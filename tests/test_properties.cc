/**
 * @file
 * Property-based tests: parameterized sweeps over seeds, predictor
 * kinds, budgets, and future-bit counts, checking invariants against
 * reference models rather than specific values.
 */

#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "common/history_register.hh"
#include "common/rng.hh"
#include "core/tag_filter.hh"
#include "sim/driver.hh"

namespace pcbp
{
namespace
{

// ---------------------------------------- HistoryRegister vs reference

class HistoryModelTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistoryModelTest, MatchesDequeReference)
{
    Rng rng(GetParam());
    HistoryRegister h;
    std::deque<bool> model(HistoryRegister::capacity, false);

    for (int step = 0; step < 3000; ++step) {
        const unsigned op = static_cast<unsigned>(rng.nextBelow(4));
        if (op <= 1) {
            const bool bit = rng.nextBool(0.5);
            h.shiftIn(bit);
            model.push_front(bit);
            model.pop_back();
        } else if (op == 2) {
            const unsigned i = static_cast<unsigned>(
                rng.nextBelow(HistoryRegister::capacity));
            ASSERT_EQ(h.bit(i), model[i]) << "step " << step;
        } else {
            const unsigned n =
                1 + static_cast<unsigned>(rng.nextBelow(64));
            std::uint64_t expect = 0;
            for (unsigned i = 0; i < n; ++i)
                expect |= std::uint64_t(model[i]) << i;
            ASSERT_EQ(h.low(n), expect) << "step " << step;
        }
    }

    // Window reads across the whole register.
    for (unsigned first : {0u, 7u, 63u, 64u, 65u, 90u}) {
        const unsigned n = std::min(32u, HistoryRegister::capacity - first);
        std::uint64_t expect = 0;
        for (unsigned i = 0; i < n; ++i)
            expect |= std::uint64_t(model[first + i]) << i;
        EXPECT_EQ(h.window(first, n), expect) << "first=" << first;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistoryModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------- TagFilter properties

class TagFilterPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(TagFilterPropertyTest, AllocateThenProbeHitsUntilEvicted)
{
    const auto [sets_log2, ways] = GetParam();
    TagFilter f(std::size_t(1) << sets_log2, ways, 10, 18);
    Rng rng(99);

    for (int step = 0; step < 2000; ++step) {
        HistoryRegister bor;
        for (int i = 0; i < 18; ++i)
            bor.shiftIn(rng.nextBool(0.5));
        const Addr pc = 0x1000 + 16 * rng.nextBelow(256);

        f.allocate(pc, bor);
        ASSERT_TRUE(f.probe(pc, bor).hit)
            << "an entry must be visible immediately after allocation";
    }
}

TEST_P(TagFilterPropertyTest, TouchProtectsMru)
{
    const auto [sets_log2, ways] = GetParam();
    if (ways < 2)
        GTEST_SKIP();
    TagFilter f(std::size_t(1) << sets_log2, ways, 10, 18);
    Rng rng(7);
    // Fill one context repeatedly; the most recently used entry
    // must survive a subsequent allocation into the same set.
    HistoryRegister mru_bor;
    mru_bor.shiftIn(true);
    const Addr mru_pc = 0x2000;
    f.allocate(mru_pc, mru_bor);
    for (int i = 0; i < ways * 4; ++i) {
        f.touch(f.probe(mru_pc, mru_bor).entry);
        HistoryRegister other;
        for (int k = 0; k < 18; ++k)
            other.shiftIn(rng.nextBool(0.5));
        f.allocate(0x3000 + 16 * i, other);
        ASSERT_TRUE(f.probe(mru_pc, mru_bor).hit)
            << "MRU entry evicted at step " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagFilterPropertyTest,
    ::testing::Values(std::make_tuple(0, 4), std::make_tuple(2, 2),
                      std::make_tuple(4, 6), std::make_tuple(6, 3)));

// ------------------------------------------- engine seed/property sweeps

class EngineSeedTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineSeedTest, RandomProgramsKeepInvariants)
{
    WorkloadRecipe r;
    r.name = "prop";
    r.seed = GetParam();
    r.targetBlocks = 250;
    r.numChains = 3;
    r.numPhaseChains = 3;
    Program p = generateProgram(r);

    auto hybrid = hybridSpec(ProphetKind::Perceptron, Budget::B4KB,
                             CriticKind::TaggedGshare, Budget::B4KB, 8)
                      .build();
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    Engine engine(p, *hybrid, cfg);
    const EngineStats st = engine.run(); // asserts internal invariants

    EXPECT_EQ(st.committedBranches, 20000u);
    EXPECT_LE(st.finalMispredicts, st.committedBranches);
    EXPECT_LE(st.btbMisses, st.committedBranches);
    EXPECT_EQ(st.critiques.total() + st.btbMisses, st.committedBranches);
    EXPECT_GE(st.mispRate(), 0.0);
    EXPECT_LE(st.mispRate(), 1.0);
    // Bookkeeping identity: the final prediction differs from the
    // prophet's only via explicit disagree critiques, so
    //   final = prophet - incorrect_disagree + correct_disagree
    //           + (BTB-miss branches that were taken).
    const auto fixed =
        st.critiques.get(CritiqueClass::IncorrectDisagree);
    const auto broken =
        st.critiques.get(CritiqueClass::CorrectDisagree);
    EXPECT_GE(st.finalMispredicts + fixed,
              st.prophetMispredicts)
        << "only incorrect_disagree critiques can remove mispredicts";
    EXPECT_LE(st.finalMispredicts,
              st.prophetMispredicts - fixed + broken + st.btbMisses)
        << "only correct_disagree and BTB misses can add mispredicts";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeedTest,
                         ::testing::Values(101, 202, 303, 404, 505,
                                           606, 707, 808));

// ------------------------------------- all prophets x budgets liveness

class ProphetSweepTest
    : public ::testing::TestWithParam<std::tuple<ProphetKind, Budget>>
{
};

TEST_P(ProphetSweepTest, RunsAndPredictsBetterThanCoinFlip)
{
    const auto [kind, budget] = GetParam();
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    auto hybrid = prophetAlone(kind, budget).build();
    EngineConfig cfg;
    cfg.measureBranches = 15000;
    cfg.warmupBranches = 3000;
    const EngineStats st = Engine(p, *hybrid, cfg).run();
    EXPECT_LT(st.mispRate(), 0.35)
        << prophetKindName(kind) << " at " << budgetName(budget);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ProphetSweepTest,
    ::testing::Combine(::testing::Values(ProphetKind::Gshare,
                                         ProphetKind::GSkew,
                                         ProphetKind::Perceptron,
                                         ProphetKind::Yags,
                                         ProphetKind::Tournament,
                                         ProphetKind::TwoLevel),
                       ::testing::Values(Budget::B2KB, Budget::B8KB,
                                         Budget::B32KB)));

// ---------------------------------------- future bits x critics sweeps

class CritiqueSweepTest
    : public ::testing::TestWithParam<std::tuple<CriticKind, unsigned>>
{
};

TEST_P(CritiqueSweepTest, HybridRunsAndClassifiesEveryCommit)
{
    const auto [critic, fb] = GetParam();
    const Workload &w = workloadByName("int.crafty");
    Program p = buildProgram(w);
    auto hybrid =
        hybridSpec(ProphetKind::GSkew, Budget::B4KB, critic,
                   Budget::B4KB, fb)
            .build();
    EngineConfig cfg;
    cfg.measureBranches = 15000;
    cfg.warmupBranches = 1500;
    const EngineStats st = Engine(p, *hybrid, cfg).run();
    EXPECT_EQ(st.critiques.total() + st.btbMisses, st.committedBranches);
    if (critic == CriticKind::UnfilteredPerceptron ||
        critic == CriticKind::UnfilteredGshare) {
        EXPECT_EQ(st.critiques.noneTotal(), 0u)
            << "unfiltered critics critique everything";
    } else {
        EXPECT_GT(st.critiques.noneTotal(), 0u)
            << "filters must reject some branches";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CritiqueSweepTest,
    ::testing::Combine(::testing::Values(CriticKind::TaggedGshare,
                                         CriticKind::FilteredPerceptron,
                                         CriticKind::UnfilteredPerceptron,
                                         CriticKind::UnfilteredGshare),
                       ::testing::Values(0u, 1u, 4u, 8u, 12u)));

// ------------------------------------------ determinism across threads

class DeterminismTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DeterminismTest, RunSetMatchesSequentialRuns)
{
    const Workload &w = workloadByName(GetParam());
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    EngineConfig cfg;
    cfg.measureBranches = 10000;
    cfg.warmupBranches = 1000;
    const EngineStats direct = runAccuracy(w, spec, cfg);
    const EngineStats again = runAccuracy(w, spec, cfg);
    EXPECT_EQ(direct.finalMispredicts, again.finalMispredicts);
    EXPECT_EQ(direct.criticOverrides, again.criticOverrides);
    EXPECT_EQ(direct.committedUops, again.committedUops);
}

INSTANTIATE_TEST_SUITE_P(Workloads, DeterminismTest,
                         ::testing::Values("unzip", "tpcc", "fp.ammp",
                                           "web.jbb"));

} // namespace
} // namespace pcbp
