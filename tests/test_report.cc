/**
 * @file
 * Tests for the reproduction/report subsystem: the ReportTable
 * renderers (Markdown/CSV/JSON), the figure registry, and the
 * runRepro pipeline's contracts — goldens for the quick run,
 * byte-determinism across `jobs`, and byte-identical convergence
 * across kill-and-resume boundaries.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "report/repro.hh"
#include "workload/trace.hh"

namespace pcbp
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Compare @p rendered against tests/golden/@p stem. Regenerate with
 * PCBP_UPDATE_GOLDEN=1 (then review the diff and commit it).
 */
void
expectMatchesGolden(const std::string &rendered, const std::string &stem)
{
    const std::string path =
        std::string(PCBP_TEST_GOLDEN_DIR) + "/" + stem;
    if (std::getenv("PCBP_UPDATE_GOLDEN")) {
        std::filesystem::create_directories(
            std::filesystem::path(path).parent_path());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        SUCCEED() << "golden updated: " << path;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (run with PCBP_UPDATE_GOLDEN=1 to create)";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(rendered, os.str()) << "golden drift in " << stem;
}

std::string
tempOut(const char *name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

// ------------------------------------------------------ ReportTable

TEST(ReportTable, MarkdownEscapesPipes)
{
    ReportTable t("t", "title", {"a|b", "c"});
    t.addNote("a note");
    t.addRow({"x|y", "z"});
    const std::string md = t.toMarkdown();
    EXPECT_NE(md.find("**title**"), std::string::npos);
    EXPECT_NE(md.find("a note"), std::string::npos);
    EXPECT_NE(md.find("a\\|b"), std::string::npos);
    EXPECT_NE(md.find("x\\|y"), std::string::npos);
}

TEST(ReportTable, CsvQuotesSpecialCells)
{
    ReportTable t("t", "the, title", {"col,1", "col\"2", "c"});
    t.addRow({"a,b", "say \"hi\"", "plain"});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("# t: the, title"), std::string::npos);
    EXPECT_NE(csv.find("\"col,1\",\"col\"\"2\",c"),
              std::string::npos);
    EXPECT_NE(csv.find("\"a,b\",\"say \"\"hi\"\"\",plain"),
              std::string::npos);
}

TEST(ReportTable, JsonEscapesAndStructures)
{
    ReportTable t("id1", "say \"hi\"", {"a"});
    t.addNote("line\nbreak");
    t.addRow({"v\\w"});
    const std::string js = t.toJson();
    EXPECT_NE(js.find("\"title\":\"say \\\"hi\\\"\""),
              std::string::npos);
    EXPECT_NE(js.find("\"notes\":[\"line\\nbreak\"]"),
              std::string::npos);
    EXPECT_NE(js.find("\"rows\":[[\"v\\\\w\"]]"), std::string::npos);
}

TEST(ReportTable, RowWidthMismatchIsFatal)
{
    ReportTable t("t", "title", {"a", "b"});
    EXPECT_EXIT(t.addRow({"only one"}), testing::ExitedWithCode(1),
                "row width");
}

// --------------------------------------------------------- registry

TEST(FigureRegistry, IdsAreUniqueAndResolvable)
{
    std::set<std::string> ids;
    for (const auto &f : allFigures()) {
        EXPECT_TRUE(ids.insert(f.id).second) << "duplicate " << f.id;
        EXPECT_EQ(&figureById(f.id), &f);
        EXPECT_NE(f.sweeps, nullptr);
        EXPECT_NE(f.render, nullptr);
        EXPECT_FALSE(f.claim.empty());
        EXPECT_FALSE(f.expected.empty());
    }
    EXPECT_EXIT(figureById("fig99"), testing::ExitedWithCode(1),
                "unknown figure");
}

TEST(FigureRegistry, SelectionKeepsPaperOrderAndDeduplicates)
{
    const auto all = figuresByIds({"all"});
    EXPECT_EQ(all.size(), allFigures().size());
    const auto picked = figuresByIds({"table4", "fig5", "fig5"});
    ASSERT_EQ(picked.size(), 2u);
    EXPECT_EQ(picked[0]->id, "fig5"); // registry order, not request
    EXPECT_EQ(picked[1]->id, "table4");
    EXPECT_EQ(figuresByIds({}).size(), allFigures().size());
}

TEST(FigureRegistry, EveryFigureAcceptsWorkloadOverrides)
{
    // The ROADMAP contract: any figure runs on any workload grid.
    FigureOptions fo;
    fo.workloads = {"mm.mpeg", "fp.swim"};
    fo.branches = 1500;
    for (const auto &f : allFigures()) {
        ResultStore store;
        for (const auto &spec : f.sweeps(fo)) {
            EXPECT_EQ(spec.resolveWorkloads().size(), 2u) << f.id;
            runSweep(spec, store);
        }
        const auto tables = f.render(fo, store);
        EXPECT_FALSE(tables.empty()) << f.id;
        for (const auto &t : tables)
            EXPECT_FALSE(t.rows().empty()) << f.id << "/" << t.id();
    }
}

// ----------------------------------------------------------- repro

TEST(Repro, QuickRunMatchesGoldens)
{
    // The acceptance pin: `pcbp_repro run --quick` emits REPRO.md and
    // per-figure artifacts that match the checked-in goldens (two
    // figures pinned in all three formats to keep golden churn
    // reviewable; REPRO.md covers every figure's Markdown).
    ReproOptions opts;
    opts.quick = true;
    opts.outDir = tempOut("pcbp_repro_quick");
    const ReproSummary s = runRepro(opts);
    ASSERT_TRUE(s.complete);
    EXPECT_EQ(s.reportPath, opts.outDir + "/REPRO.md");
    expectMatchesGolden(slurp(opts.outDir + "/REPRO.md"),
                        "repro_quick/REPRO.md");
    for (const char *stem :
         {"fig5.csv", "fig5.json", "table4.csv", "table4.json"})
        expectMatchesGolden(slurp(opts.outDir + "/" + stem),
                            std::string("repro_quick/") + stem);
    std::filesystem::remove_all(opts.outDir);
}

TEST(Repro, QuickRunWithBatchingMatchesGoldens)
{
    // The committed repro_quick goldens were produced by the default
    // (unbatched) pipeline; a --batch run must land on the same
    // bytes — REPRO.md and the per-figure artifacts alike. This is
    // the end-to-end byte-diff of batching on vs off: the goldens
    // ARE the batching-off reference.
    ReproOptions opts;
    opts.quick = true;
    opts.batch = true;
    opts.outDir = tempOut("pcbp_repro_quick_batch");
    const ReproSummary s = runRepro(opts);
    ASSERT_TRUE(s.complete);
    expectMatchesGolden(slurp(opts.outDir + "/REPRO.md"),
                        "repro_quick/REPRO.md");
    for (const char *stem :
         {"fig5.csv", "fig5.json", "table4.csv", "table4.json"})
        expectMatchesGolden(slurp(opts.outDir + "/" + stem),
                            std::string("repro_quick/") + stem);
    std::filesystem::remove_all(opts.outDir);
}

TEST(Repro, JobsDoNotAffectAnyArtifact)
{
    auto run = [&](unsigned jobs, const char *name) {
        ReproOptions opts;
        opts.figures = {"fig5"};
        opts.figure.branches = 1500;
        opts.jobs = jobs;
        opts.outDir = tempOut(name);
        const ReproSummary s = runRepro(opts);
        EXPECT_TRUE(s.complete);
        return opts.outDir;
    };
    const std::string a = run(1, "pcbp_repro_j1");
    const std::string b = run(4, "pcbp_repro_j4");
    for (const char *f :
         {"/REPRO.md", "/fig5.csv", "/fig5.json",
          "/store/fig5.jsonl"})
        EXPECT_EQ(slurp(a + f), slurp(b + f)) << f;
    std::filesystem::remove_all(a);
    std::filesystem::remove_all(b);
}

TEST(Repro, KilledMidGridResumesByteIdentical)
{
    ReproOptions ref_opts;
    ref_opts.figures = {"fig5"};
    ref_opts.figure.branches = 1500;
    ref_opts.outDir = tempOut("pcbp_repro_ref");
    ASSERT_TRUE(runRepro(ref_opts).complete);
    const std::string ref_report = slurp(ref_opts.outDir + "/REPRO.md");
    const std::string ref_store =
        slurp(ref_opts.outDir + "/store/fig5.jsonl");

    // Interrupt after a few cells: no report yet, partial store.
    ReproOptions opts = ref_opts;
    opts.outDir = tempOut("pcbp_repro_cut");
    opts.maxCells = 7;
    opts.jobs = 3;
    const ReproSummary cut = runRepro(opts);
    EXPECT_FALSE(cut.complete);
    EXPECT_EQ(cut.executedCells, 7u);
    EXPECT_TRUE(cut.reportPath.empty());
    EXPECT_FALSE(
        std::filesystem::exists(opts.outDir + "/REPRO.md"));

    // The resumed run computes only the delta and converges to the
    // reference bytes, store file included.
    opts.maxCells = 0;
    opts.jobs = 2;
    const ReproSummary resumed = runRepro(opts);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.skippedCells, 7u);
    EXPECT_EQ(slurp(opts.outDir + "/REPRO.md"), ref_report);
    EXPECT_EQ(slurp(opts.outDir + "/store/fig5.jsonl"), ref_store);

    std::filesystem::remove_all(ref_opts.outDir);
    std::filesystem::remove_all(opts.outDir);
}

TEST(Repro, RenderOnlyNeverSimulates)
{
    ReproOptions opts;
    opts.figures = {"fig5"};
    opts.figure.branches = 1500;
    opts.outDir = tempOut("pcbp_repro_render");

    // On an empty store, render-only reports incompleteness.
    ReproOptions render = opts;
    render.renderOnly = true;
    const ReproSummary missing = runRepro(render);
    EXPECT_FALSE(missing.complete);
    EXPECT_EQ(missing.executedCells, 0u);

    // After a real run, render-only reproduces the report bytes.
    ASSERT_TRUE(runRepro(opts).complete);
    const std::string ref = slurp(opts.outDir + "/REPRO.md");
    std::filesystem::remove(opts.outDir + "/REPRO.md");
    const ReproSummary again = runRepro(render);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(again.executedCells, 0u);
    EXPECT_EQ(slurp(opts.outDir + "/REPRO.md"), ref);
    std::filesystem::remove_all(opts.outDir);
}

TEST(Repro, TraceWorkloadDrivesAFigure)
{
    // The `trace:<path>` override: record a committed stream, then
    // reproduce a figure against the trace instead of a registry
    // workload.
    const std::string trace =
        testing::TempDir() + "pcbp_repro_trace.pcbptrc";
    {
        const Workload &w = workloadByName("mm.mpeg");
        Program program = buildProgram(w);
        ProgramWalkStream stream(program, 4000);
        TraceWriter writer(trace);
        for (std::uint64_t i = 0; i < 4000; ++i) {
            const CommittedBranch *cb = stream.at(i);
            ASSERT_NE(cb, nullptr);
            writer.append(*cb);
            stream.release(i + 1);
        }
        writer.finish();
    }
    FigureOptions fo;
    fo.workloads = {"trace:" + trace};
    fo.branches = 1500;
    const FigureDef &fig = figureById("fig5");
    ResultStore store;
    for (const auto &spec : fig.sweeps(fo))
        runSweep(spec, store);
    const auto tables = fig.render(fo, store);
    ASSERT_EQ(tables.size(), 1u);
    // One workload row plus the AVG row.
    EXPECT_EQ(tables[0].rows().size(), 2u);
    std::remove(trace.c_str());
}

} // namespace
} // namespace pcbp
