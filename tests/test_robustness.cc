/**
 * @file
 * Robustness and failure-injection tests: invalid configurations
 * must fail loudly (panic/fatal), corrupted inputs must be rejected,
 * and boundary conditions must hold.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/logging.hh"
#include "core/tag_filter.hh"
#include "predictors/factory.hh"
#include "predictors/fusion.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "workload/trace.hh"

namespace pcbp
{
namespace
{

// --------------------------------------------------- invalid configs die

TEST(RobustnessDeath, GshareRequiresPowerOfTwo)
{
    EXPECT_DEATH(Gshare(1000, 12), "gshare size must be 2\\^n");
}

TEST(RobustnessDeath, TagFilterBounds)
{
    EXPECT_DEATH(TagFilter(63, 4, 10, 18), "filter sets must be 2\\^n");
    EXPECT_DEATH(TagFilter(64, 4, 2, 18), "tag_bits");
}

TEST(RobustnessDeath, FusionNeedsComponents)
{
    std::vector<DirectionPredictorPtr> one;
    one.push_back(makeProphet(ProphetKind::Bimodal, Budget::B2KB));
    EXPECT_DEATH(FusionHybrid(std::move(one), 1024),
                 "fusion wants 2-4 components");
}

TEST(RobustnessDeath, UnknownSpecStringsAreFatal)
{
    EXPECT_DEATH(makeProphet("ittage:8KB"), "unknown predictor kind");
    EXPECT_DEATH(makeProphet("gshare:7KB"), "unknown budget");
    EXPECT_DEATH(parseCriticKind("oracle"), "unknown critic kind");
    EXPECT_DEATH(workloadByName("spec2006.gcc"), "unknown workload");
}

TEST(RobustnessDeath, HybridRequiresProphet)
{
    HybridConfig cfg;
    EXPECT_DEATH(ProphetCriticHybrid(nullptr, nullptr, cfg),
                 "a hybrid needs a prophet");
}

// ------------------------------------------------------ corrupted traces

TEST(TraceRobustness, MissingFileIsFatal)
{
    EXPECT_DEATH(loadTrace("/nonexistent/dir/foo.trace"),
                 "cannot open");
}

TEST(TraceRobustness, BadMagicIsFatal)
{
    const std::string path = "/tmp/pcbp_badmagic.trace";
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOTATRACEFILE-------";
    }
    EXPECT_DEATH(loadTrace(path), "not a pcbp trace");
    std::remove(path.c_str());
}

TEST(TraceRobustness, TruncatedFileIsFatal)
{
    const Workload &w = workloadByName("fp.swim");
    Program p = buildProgram(w);
    auto trace = walkProgram(p, 100);
    const std::string path = "/tmp/pcbp_trunc.trace";
    saveTrace(path, trace);
    // Chop the file in half.
    {
        std::ifstream in(path, std::ios::binary);
        std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size() / 2));
    }
    EXPECT_DEATH(loadTrace(path), "truncated");
    std::remove(path.c_str());
}

TEST(TraceRobustness, EmptyTraceRoundTrips)
{
    const std::string path = "/tmp/pcbp_empty.trace";
    saveTrace(path, {});
    EXPECT_TRUE(loadTrace(path).empty());
    std::remove(path.c_str());
}

// ------------------------------------------------------------ boundaries

TEST(Boundaries, MinimalEngineRun)
{
    // The smallest legal configuration still runs to completion.
    Program p("mini");
    BasicBlock a;
    a.branchPc = 0x1000;
    a.numUops = 1;
    a.takenTarget = 0;
    a.fallthroughTarget = 0;
    a.behavior = std::make_unique<BiasedBehavior>(1.0, 1);
    p.addBlock(std::move(a));
    p.validate();

    auto h = prophetAlone(ProphetKind::Bimodal, Budget::B2KB).build();
    EngineConfig cfg;
    cfg.pipelineDepth = 2;
    cfg.measureBranches = 10;
    cfg.warmupBranches = 0;
    const EngineStats st = Engine(p, *h, cfg).run();
    EXPECT_EQ(st.committedBranches, 10u);
    EXPECT_EQ(st.committedUops, 10u);
}

TEST(Boundaries, TwelveFutureBitsAtMinimumDepth)
{
    const Workload &w = workloadByName("fp.swim");
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                        CriticKind::TaggedGshare, Budget::B2KB, 12)
                 .build();
    EngineConfig cfg;
    cfg.pipelineDepth = 13; // minimum legal: futureBits + 1
    cfg.measureBranches = 5000;
    cfg.warmupBranches = 500;
    const EngineStats st = Engine(p, *h, cfg).run();
    EXPECT_EQ(st.committedBranches, 5000u);
    // With depth == bits + 1 most critiques are forced partial (the
    // queue can never hold 12 younger predictions when resolving).
    EXPECT_GT(st.partialCritiques, 0u);
}

TEST(Boundaries, HugeBlocksDontBreakTiming)
{
    // Blocks larger than the fetch width stream over several cycles.
    Program p("big-blocks");
    for (int i = 0; i < 2; ++i) {
        BasicBlock b;
        b.branchPc = 0x1000 + 16 * i;
        b.numUops = 100;
        b.takenTarget = static_cast<BlockId>(1 - i);
        b.fallthroughTarget = static_cast<BlockId>(1 - i);
        b.behavior = std::make_unique<BiasedBehavior>(1.0, 1 + i);
        p.addBlock(std::move(b));
    }
    p.validate();
    auto h = prophetAlone(ProphetKind::Bimodal, Budget::B2KB).build();
    TimingConfig cfg;
    cfg.measureBranches = 500;
    cfg.warmupBranches = 50;
    const TimingStats st = TimingSim(p, *h, cfg).run();
    EXPECT_EQ(st.committedBranches, 500u);
    EXPECT_NEAR(st.upc(), 6.0, 0.5)
        << "long straight blocks should saturate the 6-uop machine";
}

TEST(Boundaries, ZeroWarmupMeasuresEverything)
{
    const Workload &w = workloadByName("fp.swim");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);
    EngineConfig cfg;
    cfg.measureBranches = 2000;
    cfg.warmupBranches = 0;
    const EngineStats st = runAccuracy(w, spec, cfg);
    EXPECT_EQ(st.committedBranches, 2000u);
    EXPECT_GE(st.btbMisses, 1u) << "cold BTB misses are visible";
}

TEST(Boundaries, BenchScaleFloorsAtUsableSizes)
{
    // engineConfigFor never produces degenerate run lengths.
    const Workload &w = workloadByName("fp.swim");
    const EngineConfig cfg = engineConfigFor(w);
    EXPECT_GE(cfg.measureBranches, 1000u);
    EXPECT_GE(cfg.warmupBranches, 100u);
}

} // namespace
} // namespace pcbp
