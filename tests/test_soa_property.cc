/**
 * @file
 * Property/fuzz tests for the SoA + SIMD prediction layer.
 *
 * The batched engine's equivalence argument (DESIGN.md §12) rests on
 * three claims, each pinned here by randomized differential testing
 * against a scalar reference:
 *
 * - the dispatched SIMD kernels (dot product, train) are
 *   bit-identical to the scalar reference on every input, pad lanes
 *   included — integer-only arithmetic makes the reduction
 *   order-independent;
 * - predictBatch/trainBatch on every registry predictor reproduce
 *   the sequential predict/update loop exactly, under random
 *   interleavings of batch widths;
 * - the SoA containers (SatCounterTable) and hot-path bit helpers
 *   (foldBitsFixed, bitReverse64) match their element-wise
 *   references.
 *
 * The final tests push recovery-heavy and slab-growth schedules
 * through the batched engine path (the test_fork.cc harness shapes),
 * exercising checkpoint-slab growth and fork-ring copies inside a
 * batch.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/bit_utils.hh"
#include "common/sat_counter.hh"
#include "obs/stat_registry.hh"
#include "predictors/factory.hh"
#include "predictors/simd.hh"
#include "sim/driver.hh"
#include "workload/generator.hh"

namespace pcbp
{
namespace
{

// ------------------------------------------------- kernel equivalence

/** Hist widths crossing every vector-width boundary (64B = 64 lanes,
 *  32B = 32 lanes, plus odd tails and the two-word split at 64). */
const unsigned kWidths[] = {1, 7, 16, 31, 32, 59, 64, 65, 100, 128};

std::size_t
paddedStride(unsigned n)
{
    return (std::size_t(n) + 63) / 64 * 64;
}

/**
 * The dispatched dot kernel must equal the scalar reference on random
 * weights/bits at every history width. The fuzz respects the two
 * caller contracts from simd.hh — pad lanes are zero (the vector
 * paths read full 64-lane blocks unmasked and count on zero pads
 * contributing zero; the train kernel, tested below, is what keeps
 * them zero), and weights stay in the train clamp's [-127, 127]
 * (-128 never occurs in real rows, and the vector negation would
 * wrap on it) — while the `bits` positions past n are random
 * garbage, which must not matter.
 */
TEST(SimdKernels, DotMatchesScalarAtEveryWidth)
{
    std::mt19937_64 rng(12345);
    const simd::DotFn dot = simd::dotKernel();
    for (const unsigned n : kWidths) {
        SCOPED_TRACE(std::string("width ") + std::to_string(n) +
                     " level " + simd::levelName());
        std::vector<std::int8_t> w(paddedStride(n), 0);
        for (int iter = 0; iter < 200; ++iter) {
            for (unsigned i = 0; i < n; ++i)
                w[i] = static_cast<std::int8_t>(int(rng() % 255) - 127);
            const std::uint64_t lo = rng(), hi = rng();
            ASSERT_EQ(dot(w.data(), n, lo, hi),
                      simd::dotBipolarScalar(w.data(), n, lo, hi));
        }
    }
}

/**
 * The dispatched train kernel must leave every weight row — pad
 * bytes included — byte-identical to the scalar reference, across
 * long schedules that drive weights into the ±127 saturation clamp.
 */
TEST(SimdKernels, TrainMatchesScalarIncludingSaturation)
{
    std::mt19937_64 rng(99);
    const simd::TrainFn train = simd::trainKernel();
    for (const unsigned n : kWidths) {
        SCOPED_TRACE(std::string("width ") + std::to_string(n) +
                     " level " + simd::levelName());
        std::vector<std::int8_t> a(paddedStride(n), 0);
        std::vector<std::int8_t> b(paddedStride(n), 0);

        // Random phase: mixed directions explore the interior.
        for (int iter = 0; iter < 300; ++iter) {
            const std::uint64_t lo = rng(), hi = rng();
            const bool taken = rng() & 1;
            train(a.data(), n, lo, hi, taken);
            simd::trainBipolarScalar(b.data(), n, lo, hi, taken);
            ASSERT_EQ(a, b) << "after mixed step " << iter;
        }

        // Saturation phase: a constant pattern pushes every touched
        // weight to a clamp boundary (+127 or -127) and holds it
        // there — the adds_epi8/max_epi8 clamp must match the scalar
        // one exactly, including never reaching -128.
        const std::uint64_t lo = rng(), hi = rng();
        for (int iter = 0; iter < 300; ++iter) {
            train(a.data(), n, lo, hi, true);
            simd::trainBipolarScalar(b.data(), n, lo, hi, true);
        }
        ASSERT_EQ(a, b) << "after saturating taken";
        for (int iter = 0; iter < 600; ++iter) {
            train(a.data(), n, lo, hi, false);
            simd::trainBipolarScalar(b.data(), n, lo, hi, false);
        }
        ASSERT_EQ(a, b) << "after saturating not-taken";
    }
}

// -------------------------------------- batch-API scalar equivalence

HistoryRegister
randomHistory(std::mt19937_64 &rng)
{
    HistoryRegister h;
    const unsigned len = 1 + unsigned(rng() % 128);
    for (unsigned i = 0; i < len; ++i)
        h.shiftIn(rng() & 1);
    return h;
}

/**
 * For every registry prophet: a random interleaving of predictBatch
 * and trainBatch calls (widths 1..16) must behave exactly as the
 * sequential predict/update loop on an identically-constructed twin.
 * This is the contract that lets the engine swap in batched lookups
 * without perturbing a single prediction.
 */
TEST(BatchApi, EveryRegistryProphetMatchesSequentialLoops)
{
    for (const ProphetKind kind : allProphetKinds()) {
        SCOPED_TRACE(prophetKindName(kind));
        std::mt19937_64 rng(777);
        const DirectionPredictorPtr batched =
            makeProphet(kind, Budget::B2KB);
        const DirectionPredictorPtr scalar =
            makeProphet(kind, Budget::B2KB);

        for (int round = 0; round < 200; ++round) {
            const std::size_t width = 1 + rng() % 16;
            if (rng() % 2) {
                std::vector<PredictQuery> qs(width);
                for (auto &q : qs) {
                    q.pc = (rng() % 4096) * 4;
                    q.hist = randomHistory(rng);
                }
                std::vector<std::uint8_t> got(width);
                batched->predictBatch(
                    qs.data(), width,
                    reinterpret_cast<bool *>(got.data()));
                for (std::size_t i = 0; i < width; ++i) {
                    ASSERT_EQ(bool(got[i]),
                              scalar->predict(qs[i].pc, qs[i].hist))
                        << "round " << round << " lane " << i;
                }
            } else {
                std::vector<TrainItem> items(width);
                for (auto &it : items) {
                    it.pc = (rng() % 4096) * 4;
                    it.hist = randomHistory(rng);
                    it.taken = rng() & 1;
                }
                batched->trainBatch(items.data(), width);
                for (const TrainItem &it : items)
                    scalar->update(it.pc, it.hist, it.taken);
            }
        }

        // Final state must agree too: probe with fresh queries.
        std::vector<PredictQuery> probe(64);
        for (auto &q : probe) {
            q.pc = (rng() % 4096) * 4;
            q.hist = randomHistory(rng);
        }
        std::vector<std::uint8_t> got(probe.size());
        batched->predictBatch(probe.data(), probe.size(),
                              reinterpret_cast<bool *>(got.data()));
        for (std::size_t i = 0; i < probe.size(); ++i) {
            ASSERT_EQ(bool(got[i]),
                      scalar->predict(probe[i].pc, probe[i].hist))
                << "final probe lane " << i;
        }
    }
}

/**
 * Clones taken mid-schedule stay equivalent: the SoA layouts must
 * deep-copy (no aliasing), since clone() is the fork seam the
 * batched runner peels lanes with.
 */
TEST(BatchApi, CloneOfSoAStateIsIndependent)
{
    std::mt19937_64 rng(31);
    for (const ProphetKind kind : allProphetKinds()) {
        SCOPED_TRACE(prophetKindName(kind));
        const DirectionPredictorPtr a = makeProphet(kind, Budget::B2KB);
        for (int i = 0; i < 500; ++i)
            a->update((rng() % 1024) * 4, randomHistory(rng), rng() & 1);

        const DirectionPredictorPtr b = a->clone();

        // Diverge the original; the clone must not move.
        const Addr pc = 4 * (rng() % 1024);
        const HistoryRegister h = randomHistory(rng);
        const bool before = b->predict(pc, h);
        for (int i = 0; i < 2000; ++i)
            a->update(pc, h, !before);
        ASSERT_EQ(b->predict(pc, h), before)
            << "clone aliased trained state";
    }
}

// --------------------------------------------- SoA container + bits

/** SatCounterTable vs vector<SatCounter> under a random op stream. */
TEST(SoAContainers, SatCounterTableMatchesElementWise)
{
    std::mt19937_64 rng(5150);
    for (const unsigned bits : {1u, 2u, 3u, 5u, 8u}) {
        SCOPED_TRACE(std::to_string(bits) + "-bit counters");
        const unsigned init = (1u << bits) / 2;
        const std::size_t n = 257;
        SatCounterTable table(n, bits, init);
        std::vector<SatCounter> ref(n, SatCounter(bits, init));

        for (int iter = 0; iter < 5000; ++iter) {
            const std::size_t i = rng() % n;
            switch (rng() % 4) {
              case 0:
                table.update(i, true);
                ref[i].update(true);
                break;
              case 1:
                table.update(i, false);
                ref[i].update(false);
                break;
              case 2: {
                const bool dir = rng() & 1;
                table.setWeak(i, dir);
                ref[i].setWeak(dir);
                break;
              }
              default: {
                const unsigned v = rng() % (table.maxValue() + 1);
                table.set(i, v);
                ref[i].set(v);
                break;
              }
            }
            ASSERT_EQ(table.value(i), ref[i].value());
            ASSERT_EQ(table.taken(i), ref[i].taken());
            ASSERT_EQ(table.saturated(i), ref[i].saturated());
        }
    }
}

/** foldBitsFixed is foldBits for every (value, width). */
TEST(BitUtils, FoldBitsFixedMatchesFoldBits)
{
    std::mt19937_64 rng(2026);
    for (unsigned bits = 1; bits <= 64; ++bits) {
        for (int iter = 0; iter < 200; ++iter) {
            const std::uint64_t v = rng();
            ASSERT_EQ(foldBitsFixed(v, bits), foldBits(v, bits))
                << "v=" << v << " bits=" << bits;
        }
        ASSERT_EQ(foldBitsFixed(0, bits), foldBits(0, bits));
        ASSERT_EQ(foldBitsFixed(~0ull, bits), foldBits(~0ull, bits));
    }
}

/** bitReverse64: involution, and single-bit mapping i -> 63-i. */
TEST(BitUtils, BitReverse64Properties)
{
    std::mt19937_64 rng(4242);
    for (int iter = 0; iter < 1000; ++iter) {
        const std::uint64_t v = rng();
        ASSERT_EQ(bitReverse64(bitReverse64(v)), v);
    }
    for (unsigned i = 0; i < 64; ++i)
        ASSERT_EQ(bitReverse64(std::uint64_t(1) << i),
                  std::uint64_t(1) << (63 - i));
}

// ------------------------------- stress schedules through the batch

WorkloadRecipe
stressRecipe(std::uint64_t seed, unsigned phase_chains)
{
    WorkloadRecipe r;
    r.name = "soa-stress-" + std::to_string(seed);
    r.seed = seed;
    r.targetBlocks = 150;
    r.numChains = 4;
    r.numPhaseChains = phase_chains;
    return r;
}

Workload
stressWorkload(std::uint64_t seed, unsigned phase_chains)
{
    Workload w;
    w.name = "soa-stress-" + std::to_string(seed);
    w.suite = "TEST";
    w.recipe = stressRecipe(seed, phase_chains);
    w.simBranches = 6000;
    w.warmupBranches = 600;
    return w;
}

std::string
scalarStatsJson(const Workload &w, const HybridSpec &spec,
                EngineConfig cfg)
{
    StatRegistry reg;
    cfg.statsOut = &reg;
    runAccuracy(w, spec, cfg);
    return reg.toJson();
}

/**
 * Recovery-heavy schedule (phase-changing workload, the test_fork.cc
 * SurvivesRecoveryHeavyWorkload shape) through a batched fork group:
 * frequent mispredict recoveries exercise checkpoint restore and
 * history repair on SoA state inside the lockstep pass.
 */
TEST(BatchStress, RecoveryHeavyScheduleMatchesScalar)
{
    const Workload w = stressWorkload(11, 6);
    const HybridSpec spec =
        hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                   CriticKind::FilteredPerceptron, Budget::B2KB, 12);

    std::vector<EngineConfig> group;
    for (const std::uint64_t warm : {200ull, 600ull}) {
        EngineConfig c;
        c.warmupBranches = warm;
        c.measureBranches = 5400;
        group.push_back(c);
    }

    std::vector<std::string> ref;
    for (const EngineConfig &c : group)
        ref.push_back(scalarStatsJson(w, spec, c));

    std::vector<StatRegistry> regs(group.size());
    std::vector<EngineConfig> cfgs = group;
    for (std::size_t j = 0; j < cfgs.size(); ++j)
        cfgs[j].statsOut = &regs[j];
    runAccuracyBatch(w, {spec}, {cfgs});
    for (std::size_t j = 0; j < regs.size(); ++j)
        EXPECT_EQ(regs[j].toJson(), ref[j]) << "member " << j;
}

/**
 * Slab-growth schedule (deep pipeline, the test_fork.cc
 * SurvivesCheckpointSlabGrowth shape) through a batched fork group:
 * the checkpoint slab grows mid-run, forcing hit-bit-ring rebuilds
 * and slab copies on the peeled lanes.
 */
TEST(BatchStress, CheckpointSlabGrowthMatchesScalar)
{
    const Workload w = stressWorkload(29, 2);
    const HybridSpec spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8);

    std::vector<EngineConfig> group;
    for (const std::uint64_t warm : {150ull, 450ull, 900ull}) {
        EngineConfig c;
        c.pipelineDepth = 96;
        c.warmupBranches = warm;
        c.measureBranches = 5100;
        group.push_back(c);
    }

    std::vector<std::string> ref;
    for (const EngineConfig &c : group)
        ref.push_back(scalarStatsJson(w, spec, c));

    std::vector<StatRegistry> regs(group.size());
    std::vector<EngineConfig> cfgs = group;
    for (std::size_t j = 0; j < cfgs.size(); ++j)
        cfgs[j].statsOut = &regs[j];
    runAccuracyBatch(w, {spec}, {cfgs});
    for (std::size_t j = 0; j < regs.size(); ++j)
        EXPECT_EQ(regs[j].toJson(), ref[j]) << "member " << j;
}

} // namespace
} // namespace pcbp
