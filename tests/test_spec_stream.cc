/**
 * @file
 * Tests for the streaming simulation core: CommittedStream backends,
 * bit-for-bit equivalence between the streaming path and the
 * historical precomputed-vector path, O(pipeline) window bounds, and
 * pcbp_trace-style record -> replay round trips.
 */

#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

#include "sim/committed_stream.hh"
#include "sim/driver.hh"
#include "workload/trace.hh"

namespace pcbp
{
namespace
{

std::string
tmpPath(const char *stem)
{
    return testing::TempDir() + stem;
}

void
expectSameEngineStats(const EngineStats &a, const EngineStats &b)
{
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
    EXPECT_EQ(a.prophetMispredicts, b.prophetMispredicts);
    EXPECT_EQ(a.btbMisses, b.btbMisses);
    EXPECT_EQ(a.criticOverrides, b.criticOverrides);
    EXPECT_EQ(a.squashedPredictions, b.squashedPredictions);
    EXPECT_EQ(a.wrongPathBranches, b.wrongPathBranches);
    EXPECT_EQ(a.wrongPathUops, b.wrongPathUops);
    EXPECT_EQ(a.partialCritiques, b.partialCritiques);
    for (std::size_t c = 0; c < numCritiqueClasses; ++c) {
        EXPECT_EQ(a.critiques.counts[c], b.critiques.counts[c])
            << "critique class " << c;
    }
}

// ---------------------------------------------------------- backends

TEST(CommittedStream, WalkStreamMatchesEagerWalk)
{
    const Workload &w = workloadByName("mm.mpeg");
    Program p1 = buildProgram(w);
    const auto eager = walkProgram(p1, 5000);

    Program p2 = buildProgram(w);
    ProgramWalkStream stream(p2, 5000);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const CommittedBranch *cb = stream.at(i);
        ASSERT_NE(cb, nullptr);
        EXPECT_EQ(cb->block, eager[i].block);
        EXPECT_EQ(cb->pc, eager[i].pc);
        EXPECT_EQ(cb->taken, eager[i].taken);
        EXPECT_EQ(cb->numUops, eager[i].numUops);
        stream.release(i); // keep only a 1-record tail window
    }
    EXPECT_EQ(stream.at(5000), nullptr) << "stream ends at its limit";
    EXPECT_LE(stream.windowPeak(), 2u);
}

TEST(CommittedStream, ReleasedRecordsCannotBeReRead)
{
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    ProgramWalkStream stream(p, 100);
    ASSERT_NE(stream.at(50), nullptr);
    stream.release(40);
    EXPECT_NE(stream.at(40), nullptr);
    EXPECT_DEATH(stream.at(10), "released");
}

TEST(CommittedStream, PrecomputedStreamReplaysVector)
{
    const Workload &w = workloadByName("fp.swim");
    Program p = buildProgram(w);
    auto trace = walkProgram(p, 1000);
    PrecomputedStream stream(trace);
    EXPECT_EQ(stream.length(), 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const CommittedBranch *cb = stream.at(i);
        ASSERT_NE(cb, nullptr);
        EXPECT_EQ(cb->block, trace[i].block);
        EXPECT_EQ(cb->taken, trace[i].taken);
    }
    EXPECT_EQ(stream.at(1000), nullptr);
}

TEST(CommittedStream, TraceFileRoundTrip)
{
    const Workload &w = workloadByName("int.crafty");
    Program p = buildProgram(w);
    const auto trace = walkProgram(p, 3000);
    const std::string path = tmpPath("roundtrip.pcbptrc");
    saveTrace(path, trace);

    EXPECT_EQ(traceFileCount(path), 3000u);

    // Tiny chunks so refill logic is exercised many times.
    TraceFileStream stream(path, 7);
    for (std::uint64_t i = 0; i < 3000; ++i) {
        const CommittedBranch *cb = stream.at(i);
        ASSERT_NE(cb, nullptr);
        EXPECT_EQ(cb->block, trace[i].block);
        EXPECT_EQ(cb->pc, trace[i].pc);
        EXPECT_EQ(cb->taken, trace[i].taken);
        EXPECT_EQ(cb->numUops, trace[i].numUops);
        stream.release(i);
    }
    EXPECT_EQ(stream.at(3000), nullptr);
    std::remove(path.c_str());
}

TEST(CommittedStream, TraceWriterStreamsWithoutVector)
{
    const Workload &w = workloadByName("fp.swim");
    Program p = buildProgram(w);
    const std::string path = tmpPath("writer.pcbptrc");
    {
        ProgramWalkStream walk(p, 2000);
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < 2000; ++i) {
            writer.append(*walk.at(i));
            walk.release(i + 1);
        }
        writer.finish();
        EXPECT_EQ(writer.written(), 2000u);
        EXPECT_LE(walk.windowPeak(), 2u);
    }
    const TraceSummary file = summarizeTraceFile(path);
    Program p2 = buildProgram(w);
    const TraceSummary mem = summarizeTrace(walkProgram(p2, 2000));
    EXPECT_EQ(file.branches, mem.branches);
    EXPECT_EQ(file.uops, mem.uops);
    EXPECT_EQ(file.takenBranches, mem.takenBranches);
    EXPECT_EQ(file.staticBranches, mem.staticBranches);
    std::remove(path.c_str());
}

// ------------------------------------------------------- equivalence

/**
 * The contract of the refactor: the streaming walk produces stats
 * bit-for-bit identical to running over the precomputed trace vector
 * (the seed implementation's behavior, preserved by
 * PrecomputedStream). Quick-suite spread of configs: hybrid,
 * prophet-alone, and the oracle-future-bit ablation.
 */
TEST(StreamEquivalence, EngineHybridQuickSuite)
{
    for (const char *name : {"mm.mpeg", "int.crafty", "serv.tpcc"}) {
        const Workload &w = workloadByName(name);
        const auto spec =
            hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                       CriticKind::TaggedGshare, Budget::B8KB, 8);
        EngineConfig cfg;
        cfg.measureBranches = 20000;
        cfg.warmupBranches = 2000;

        Program p1 = buildProgram(w);
        auto h1 = spec.build();
        const EngineStats streamed = Engine(p1, *h1, cfg).run();

        Program p2 = buildProgram(w);
        auto h2 = spec.build();
        PrecomputedStream pre(walkProgram(p2, 22000));
        Program p3 = buildProgram(w);
        auto h3 = spec.build();
        const EngineStats vectored = Engine(p3, *h3, cfg).run(pre);

        SCOPED_TRACE(name);
        expectSameEngineStats(streamed, vectored);
    }
}

TEST(StreamEquivalence, EngineProphetAloneAndOracle)
{
    const Workload &w = workloadByName("fp.swim");
    EngineConfig cfg;
    cfg.measureBranches = 15000;
    cfg.warmupBranches = 1500;

    for (const bool oracle : {false, true}) {
        HybridSpec spec =
            oracle ? hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                                CriticKind::TaggedGshare, Budget::B8KB, 8)
                   : prophetAlone(ProphetKind::GSkew, Budget::B16KB);
        cfg.oracleFutureBits = oracle;

        Program p1 = buildProgram(w);
        auto h1 = spec.build();
        const EngineStats streamed = Engine(p1, *h1, cfg).run();

        Program p2 = buildProgram(w);
        auto h2 = spec.build();
        PrecomputedStream pre(walkProgram(p2, 16500));
        Program p3 = buildProgram(w);
        auto h3 = spec.build();
        const EngineStats vectored = Engine(p3, *h3, cfg).run(pre);

        SCOPED_TRACE(oracle ? "oracle" : "prophet-alone");
        expectSameEngineStats(streamed, vectored);
    }
}

TEST(StreamEquivalence, TimingQuickSuite)
{
    for (const char *name : {"web.jbb", "ws.cad"}) {
        const Workload &w = workloadByName(name);
        const auto spec =
            hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                       CriticKind::TaggedGshare, Budget::B8KB, 4);
        TimingConfig cfg;
        cfg.measureBranches = 8000;
        cfg.warmupBranches = 800;

        Program p1 = buildProgram(w);
        auto h1 = spec.build();
        const TimingStats streamed = TimingSim(p1, *h1, cfg).run();

        Program p2 = buildProgram(w);
        PrecomputedStream pre(walkProgram(p2, 8800));
        Program p3 = buildProgram(w);
        auto h3 = spec.build();
        const TimingStats vectored = TimingSim(p3, *h3, cfg).run(pre);

        SCOPED_TRACE(name);
        EXPECT_EQ(streamed.cycles, vectored.cycles);
        EXPECT_EQ(streamed.committedUops, vectored.committedUops);
        EXPECT_EQ(streamed.committedBranches, vectored.committedBranches);
        EXPECT_EQ(streamed.finalMispredicts, vectored.finalMispredicts);
        EXPECT_EQ(streamed.fetchedUops, vectored.fetchedUops);
        EXPECT_EQ(streamed.wrongPathFetchedUops,
                  vectored.wrongPathFetchedUops);
        EXPECT_EQ(streamed.criticOverrides, vectored.criticOverrides);
        EXPECT_EQ(streamed.ftqEntriesFlushedByCritic,
                  vectored.ftqEntriesFlushedByCritic);
        EXPECT_EQ(streamed.partialCritiques, vectored.partialCritiques);
        EXPECT_EQ(streamed.ftqEmptyCycles, vectored.ftqEmptyCycles);
    }
}

// ----------------------------------------------------- memory bounds

TEST(StreamEquivalence, EngineWindowBoundedByPipeline)
{
    const Workload &w = workloadByName("mm.mpeg");
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    EngineConfig cfg;
    cfg.measureBranches = 50000;
    cfg.warmupBranches = 5000;

    Program p = buildProgram(w);
    auto h = spec.build();
    Engine engine(p, *h, cfg);
    ProgramWalkStream stream(p, 55000);
    const EngineStats st = engine.run(stream);
    EXPECT_EQ(st.committedBranches, 50000u);
    // Resident stream window must be bounded by pipeline depth plus
    // future-bit lookahead, not by run length.
    EXPECT_LE(stream.windowPeak(),
              std::size_t(cfg.pipelineDepth) + 8 + 1);
}

TEST(StreamEquivalence, TimingWindowBoundedByPipeline)
{
    const Workload &w = workloadByName("web.jbb");
    const auto spec =
        hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 4);
    TimingConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;

    Program p = buildProgram(w);
    auto h = spec.build();
    TimingSim sim(p, *h, cfg);
    ProgramWalkStream stream(p, 22000);
    const TimingStats st = sim.run(stream);
    EXPECT_EQ(st.committedBranches, 20000u);
    // Bounded by the in-flight structures: instruction window blocks
    // plus the FTQ, regardless of run length.
    EXPECT_LE(stream.windowPeak(),
              cfg.windowSize / 4 + cfg.ftqSize + 1);
}

// ----------------------------------------------------- trace replay

TEST(TraceReplay, RecordedTraceDrivesEngine)
{
    const Workload &w = workloadByName("int.crafty");
    Program p = buildProgram(w);
    const std::string path = tmpPath("replay.pcbptrc");
    {
        ProgramWalkStream walk(p, 30000);
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < 30000; ++i) {
            writer.append(*walk.at(i));
            walk.release(i + 1);
        }
    }

    const Workload &tw = workloadByName("trace:" + path);
    EXPECT_EQ(tw.tracePath, path);
    EXPECT_EQ(tw.warmupBranches + tw.simBranches, 30000u);
    EXPECT_EQ(&tw, &workloadByName("trace:" + path))
        << "trace workloads are cached by name";

    EngineConfig cfg;
    cfg.warmupBranches = 3000;
    cfg.measureBranches = 27000;
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    const EngineStats st = runAccuracy(tw, spec, cfg);
    EXPECT_EQ(st.committedBranches, 27000u);
    EXPECT_GT(st.committedUops, st.committedBranches);
    EXPECT_GT(st.finalMispredicts, 0u);
    EXPECT_LT(st.mispRate(), 0.5);
    std::remove(path.c_str());
}

TEST(TraceReplay, ReconstructedProgramCoversTraceBlocks)
{
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    const auto trace = walkProgram(p, 20000);
    const std::string path = tmpPath("reconstruct.pcbptrc");
    saveTrace(path, trace);

    Program r = reconstructProgramFromTrace(path, "reconstructed");
    // Committed-path consistency: every consecutive record pair is a
    // CFG edge of the reconstruction.
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        ASSERT_EQ(r.successor(trace[i].block, trace[i].taken),
                  trace[i + 1].block);
    }
    // Block metadata survives.
    for (const auto &rec : trace) {
        EXPECT_EQ(r.block(rec.block).branchPc, rec.pc);
        EXPECT_EQ(r.block(rec.block).numUops, rec.numUops);
    }
    std::remove(path.c_str());
}

TEST(TraceReplay, TimingRunsOnTraceWorkload)
{
    const Workload &w = workloadByName("fp.swim");
    Program p = buildProgram(w);
    const std::string path = tmpPath("replay_timing.pcbptrc");
    saveTrace(path, walkProgram(p, 15000));

    const Workload &tw = workloadByName("trace:" + path);
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);
    const TimingStats st = runTiming(tw, spec);
    EXPECT_GT(st.committedBranches, 0u);
    EXPECT_GT(st.upc(), 0.5);
    EXPECT_LE(st.upc(), 6.0);
    std::remove(path.c_str());
}

} // namespace
} // namespace pcbp
