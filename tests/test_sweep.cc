/**
 * @file
 * Tests for the sweep orchestration subsystem: the work-stealing
 * thread pool, SweepSpec parsing / round-tripping / expansion, the
 * resumable ResultStore, and the runner's determinism and resume
 * contracts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/thread_pool.hh"
#include "obs/stat_registry.hh"
#include "sweep/runner.hh"

namespace pcbp
{
namespace
{

// ------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyBatches)
{
    ThreadPool pool(8);
    pool.parallelFor(0, [&](std::size_t) { FAIL(); });

    std::atomic<int> hits{0};
    pool.parallelFor(1, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, SingleWorkerRunsSeriallyOnCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numWorkers(), 1u);
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.parallelFor(10, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i); // no race: single worker
    });
    // One worker, front-first drain: strictly serial, in order —
    // the runner's ordered flush depends on this for --jobs 1.
    EXPECT_EQ(order,
              (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(20, [&](std::size_t i) {
            sum.fetch_add(int(i));
        });
        EXPECT_EQ(sum.load(), 190);
    }
}

TEST(ThreadPool, StealingBalancesUnevenWork)
{
    // One task is 100x the others; total wall time must be bounded
    // by the big task, not the sum — i.e. other workers must have
    // stolen the small ones. We can't time reliably in CI, so just
    // assert completion with workers > tasks and tasks > workers.
    ThreadPool pool(4);
    std::atomic<int> done{0};
    pool.parallelFor(2, [&](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 2);
    done = 0;
    pool.parallelFor(50, [&](std::size_t i) {
        volatile std::uint64_t x = 0;
        const std::uint64_t spins = i == 0 ? 200000 : 2000;
        for (std::uint64_t k = 0; k < spins; ++k)
            x += k;
        done.fetch_add(1);
    });
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, BackToBackBatchesDoNotRace)
{
    // Regression: a straggler from batch k still scanning the deques
    // must never pop a batch k+1 task before the new job pointer is
    // published (this used to segfault / hang under repetition).
    ThreadPool pool(8);
    std::atomic<std::uint64_t> total{0};
    for (int round = 0; round < 20000; ++round)
        pool.parallelFor(2, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 40000u);
}

// -------------------------------------------------------- SweepSpec

TEST(SweepSpec, ParsesTextFormat)
{
    const SweepSpec spec = SweepSpec::parse(
        "# a comment\n"
        "name = demo\n"
        "prophet = gshare, perceptron  # trailing comment\n"
        "prophet_budget = 4KB, 16KB\n"
        "critic = none, t.gshare\n"
        "critic_budget = 8KB\n"
        "future_bits = 1, 8\n"
        "spec_history = on, off\n"
        "repair_history = off\n"
        "branches = 5000\n"
        "workloads = mm.mpeg, FP00\n");
    EXPECT_EQ(spec.name, "demo");
    ASSERT_EQ(spec.axes.prophets.size(), 2u);
    EXPECT_EQ(spec.axes.prophets[1], ProphetKind::Perceptron);
    ASSERT_EQ(spec.axes.critics.size(), 2u);
    EXPECT_FALSE(spec.axes.critics[0].has_value());
    EXPECT_EQ(*spec.axes.critics[1], CriticKind::TaggedGshare);
    EXPECT_EQ(spec.axes.futureBits, (std::vector<unsigned>{1, 8}));
    EXPECT_EQ(spec.axes.speculativeHistory,
              (std::vector<bool>{true, false}));
    EXPECT_EQ(spec.axes.repairHistory, (std::vector<bool>{false}));
    EXPECT_EQ(spec.branches, 5000u);
    // mm.mpeg + the two FP00 workloads.
    EXPECT_EQ(spec.resolveWorkloads().size(), 3u);
}

TEST(SweepSpec, SerializeRoundTrips)
{
    SweepSpec spec;
    spec.name = "rt";
    spec.axes.prophets = {ProphetKind::GSkew, ProphetKind::Gshare};
    spec.axes.prophetBudgets = {Budget::B2KB, Budget::B32KB};
    spec.axes.critics = {std::nullopt, CriticKind::FilteredPerceptron};
    spec.axes.criticBudgets = {Budget::B16KB};
    spec.axes.futureBits = {0, 12};
    spec.axes.speculativeHistory = {false};
    spec.branches = 1234;
    spec.workloads = {"INT00", "unzip"};

    const SweepSpec back = SweepSpec::parse(spec.serialize());
    EXPECT_EQ(back.serialize(), spec.serialize());

    const auto a = spec.cells();
    const auto b = back.cells();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].key(), b[i].key());
}

TEST(SweepSpec, RejectsBadInput)
{
    EXPECT_EXIT(SweepSpec::parse("bogus_key = 1\n"),
                testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(SweepSpec::parse("prophet = warlock\n"),
                testing::ExitedWithCode(1), "unknown predictor kind");
    EXPECT_EXIT(SweepSpec::parse("no equals sign"),
                testing::ExitedWithCode(1), "expected");
    EXPECT_EXIT(SweepSpec::parse("name = a\nname = b\n"),
                testing::ExitedWithCode(1), "duplicate key");
    EXPECT_EXIT(SweepSpec::parse("workloads = NOPE\n").cells(),
                testing::ExitedWithCode(1), "unknown");
    EXPECT_EXIT(SweepSpec::parse("future_bits = abc\n"),
                testing::ExitedWithCode(1), "bad value");
    EXPECT_EXIT(SweepSpec::parse("future_bits = 4x\n"),
                testing::ExitedWithCode(1), "bad value");
    EXPECT_EXIT(SweepSpec::parse("branches = -5\n"),
                testing::ExitedWithCode(1), "bad value");
}

TEST(SweepSpec, ParsesTimingAndAblationAxes)
{
    const SweepSpec spec = SweepSpec::parse(
        "name = t\n"
        "mode = timing\n"
        "filter_tag_bits = 4, 10\n"
        "workloads = mm.mpeg\n");
    EXPECT_TRUE(spec.timing);
    EXPECT_EQ(spec.axes.filterTagBits, (std::vector<unsigned>{4, 10}));
    const auto cells = spec.cells();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_TRUE(cells[0].timing);

    const SweepSpec oracle = SweepSpec::parse(
        "oracle = off, on\nworkloads = mm.mpeg\n");
    EXPECT_FALSE(oracle.timing);
    ASSERT_EQ(oracle.cells().size(), 2u);
    EXPECT_FALSE(oracle.cells()[0].oracleFutureBits);
    EXPECT_TRUE(oracle.cells()[1].oracleFutureBits);
    EXPECT_TRUE(oracle.cells()[1].engineConfig().oracleFutureBits);

    EXPECT_EXIT(SweepSpec::parse("mode = sideways\n"),
                testing::ExitedWithCode(1), "bad value");
    EXPECT_EXIT(SweepSpec::parse("mode = timing\noracle = on\n"
                                 "workloads = mm.mpeg\n")
                    .cells(),
                testing::ExitedWithCode(1), "oracle axis");
}

TEST(SweepSpec, TimingAndAblationAxesRoundTrip)
{
    SweepSpec spec;
    spec.name = "rt2";
    spec.timing = true;
    spec.axes.filterTagBits = {0, 8};
    spec.branches = 2000;
    spec.workloads = {"mm.mpeg"};
    const SweepSpec back = SweepSpec::parse(spec.serialize());
    EXPECT_EQ(back.serialize(), spec.serialize());
    EXPECT_TRUE(back.timing);
}

TEST(SweepSpec, NonDefaultKnobsAppendKeySuffixes)
{
    SweepSpec spec;
    spec.workloads = {"mm.mpeg"};
    spec.branches = 2000;
    const std::string base = spec.cells()[0].key();
    // Plain accuracy cells keep the historical key format.
    EXPECT_EQ(base.find(";md="), std::string::npos);
    EXPECT_EQ(base.find(";tb="), std::string::npos);
    EXPECT_EQ(base.find(";ofb="), std::string::npos);

    SweepSpec timing = spec;
    timing.timing = true;
    EXPECT_EQ(timing.cells()[0].key(), base + ";md=t");

    SweepSpec tagged = spec;
    tagged.axes.filterTagBits = {6};
    EXPECT_EQ(tagged.cells()[0].key(), base + ";tb=6");

    SweepSpec oracle = spec;
    oracle.axes.oracleFutureBits = {true};
    EXPECT_EQ(oracle.cells()[0].key(), base + ";ofb=1");
}

TEST(SweepSpec, InapplicableAblationAxesCollapse)
{
    // Baselines have no critique path (no oracle bits consumed) and
    // unfiltered critics have no tags: those grid points collapse
    // instead of multiplying into duplicate cells.
    SweepSpec spec;
    spec.axes.critics = {std::nullopt,
                         CriticKind::UnfilteredPerceptron,
                         CriticKind::TaggedGshare};
    spec.axes.filterTagBits = {8, 10};
    spec.axes.oracleFutureBits = {false, true};
    spec.workloads = {"mm.mpeg"};
    spec.branches = 2000;
    // none: 1; u.perceptron: 2 oracle; t.gshare: 2 tags x 2 oracle.
    EXPECT_EQ(spec.cells().size(), 7u);
}

TEST(SweepSpec, BaselineRowsCollapseCriticAxes)
{
    SweepSpec spec;
    spec.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    spec.axes.criticBudgets = {Budget::B2KB, Budget::B8KB};
    spec.axes.futureBits = {1, 4, 8};
    spec.workloads = {"mm.mpeg"};
    // Hybrid rows: 2 critic budgets x 3 future bits = 6. Baseline
    // rows collapse both axes to a single cell.
    EXPECT_EQ(spec.cells().size(), 7u);
}

TEST(SweepSpec, CellKeyEncodesEverySimulationInput)
{
    SweepSpec spec;
    spec.workloads = {"mm.mpeg"};
    spec.branches = 2000;
    const auto base = spec.cells();
    ASSERT_EQ(base.size(), 1u);

    SweepSpec longer = spec;
    longer.branches = 4000;
    EXPECT_NE(base[0].key(), longer.cells()[0].key());

    SweepSpec noRepair = spec;
    noRepair.axes.repairHistory = {false};
    EXPECT_NE(base[0].key(), noRepair.cells()[0].key());

    EXPECT_NE(base[0].hash(), longer.cells()[0].hash());
}

// ------------------------------------------------------ ResultStore

CellResult
sampleResult(const char *key)
{
    CellResult r;
    r.key = key;
    r.hash = 42;
    r.workload = "mm.mpeg";
    r.suite = "MM";
    r.prophet = "perceptron:8KB";
    r.critic = "t.gshare:8KB";
    r.futureBits = 8;
    r.measureBranches = 2000;
    r.committedBranches = 2000;
    r.committedUops = 30000;
    r.finalMispredicts = 111;
    r.prophetMispredicts = 222;
    r.critiques.counts[1] = 7;
    return r;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Compare @p rendered against the committed golden @p stem in
 * tests/golden/ (regenerate with PCBP_UPDATE_GOLDEN=1, then review
 * and commit the diff) — same protocol as test_golden.cc.
 */
void
expectMatchesGolden(const std::string &rendered, const char *stem)
{
    const std::string path =
        std::string(PCBP_TEST_GOLDEN_DIR) + "/" + stem;
    if (std::getenv("PCBP_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "golden updated: " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (run with PCBP_UPDATE_GOLDEN=1 to create)";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(rendered, os.str()) << "golden drift in " << stem;
}

TEST(ResultStore, JsonRoundTrips)
{
    const CellResult r = sampleResult("w=x;p=y");
    const CellResult back = CellResult::fromJson(r.toJson());
    EXPECT_EQ(back.key, r.key);
    EXPECT_EQ(back.hash, r.hash);
    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(back.critic, r.critic);
    EXPECT_EQ(back.futureBits, r.futureBits);
    EXPECT_EQ(back.finalMispredicts, r.finalMispredicts);
    EXPECT_EQ(back.critiques.counts[1], 7u);
    EXPECT_EQ(back.toJson(), r.toJson());
}

TEST(ResultStore, PersistsAndReloads)
{
    const std::string path =
        testing::TempDir() + "pcbp_store_test.jsonl";
    std::remove(path.c_str());
    {
        ResultStore store(path);
        store.put(sampleResult("k1"));
        store.put(sampleResult("k2"));
        EXPECT_EQ(store.size(), 2u);
    }
    ResultStore reload(path);
    EXPECT_EQ(reload.size(), 2u);
    EXPECT_TRUE(reload.has("k1"));
    EXPECT_FALSE(reload.has("k3"));
    ASSERT_NE(reload.find("k2"), nullptr);
    EXPECT_EQ(reload.find("k2")->finalMispredicts, 111u);
    std::remove(path.c_str());
}

TEST(ResultStore, TornFinalLineIsDroppedAndTruncated)
{
    const std::string path =
        testing::TempDir() + "pcbp_torn_test.jsonl";
    std::remove(path.c_str());
    {
        ResultStore store(path);
        store.put(sampleResult("k1"));
    }
    // Simulate a kill mid-append: half a JSON line, no newline.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"key\":\"k2\",\"hash\":12,\"worklo";
    }
    {
        ResultStore store(path);
        EXPECT_EQ(store.size(), 1u); // torn line dropped
        EXPECT_TRUE(store.has("k1"));
        store.put(sampleResult("k2")); // append lands on clean bytes
    }
    ResultStore reload(path);
    EXPECT_EQ(reload.size(), 2u);
    EXPECT_TRUE(reload.has("k2"));
    std::remove(path.c_str());
}

TEST(ResultStore, UnterminatedFinalLineIsTreatedAsTorn)
{
    // Regression: a write torn exactly at the newline leaves a final
    // line that *parses* but is not terminated. Keeping it used to
    // make the next append concatenate onto it, merging two records
    // into one corrupt line (losing a result and breaking the
    // byte-determinism contract). The line must be dropped and the
    // file truncated, like any other torn tail.
    const std::string path =
        testing::TempDir() + "pcbp_noeol_test.jsonl";
    std::remove(path.c_str());
    {
        ResultStore store(path);
        store.put(sampleResult("k1"));
        store.put(sampleResult("k2"));
    }
    // Strip the trailing newline: k2's line is now unterminated.
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        std::string content = os.str();
        ASSERT_EQ(content.back(), '\n');
        content.pop_back();
        in.close();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << content;
    }
    std::string reference;
    {
        ResultStore store(path);
        EXPECT_EQ(store.size(), 1u); // k2 dropped, will rerun
        EXPECT_TRUE(store.has("k1"));
        EXPECT_FALSE(store.has("k2"));
        store.put(sampleResult("k2")); // the "rerun" lands cleanly
        reference = slurp(path);
    }
    // The repaired file replays completely and stays byte-stable.
    ResultStore reload(path);
    EXPECT_EQ(reload.size(), 2u);
    EXPECT_TRUE(reload.has("k2"));
    EXPECT_EQ(slurp(path), reference);
    std::remove(path.c_str());
}

TEST(ResultStore, MidFileCorruptionIsFatal)
{
    const std::string path =
        testing::TempDir() + "pcbp_corrupt_test.jsonl";
    std::remove(path.c_str());
    {
        ResultStore store(path);
        store.put(sampleResult("k1"));
        store.put(sampleResult("k2"));
    }
    // Corrupt the FIRST line; valid data after it means this is not
    // an interrupted append, so refuse to guess.
    {
        std::ifstream in(path);
        std::string l1, l2;
        std::getline(in, l1);
        std::getline(in, l2);
        in.close();
        std::ofstream out(path, std::ios::trunc);
        out << l1.substr(0, l1.size() / 2) << "\n" << l2 << "\n";
    }
    EXPECT_EXIT(ResultStore store(path), testing::ExitedWithCode(1),
                "malformed line");
    std::remove(path.c_str());
}

TEST(ResultStore, ExportsCsvWithDerivedColumns)
{
    const std::string csv =
        ResultStore::exportCsv({sampleResult("k1")});
    EXPECT_NE(csv.find("misp_per_kuops"), std::string::npos);
    // 111 mispredicts over 30000 uops = 3.7 misp/Kuops.
    EXPECT_NE(csv.find("3.700000"), std::string::npos);
    EXPECT_NE(csv.find("mm.mpeg,MM,perceptron:8KB,t.gshare:8KB,8"),
              std::string::npos);
}

// ----------------------------------------------------------- Runner

SweepSpec
smallGrid()
{
    SweepSpec spec;
    spec.name = "test-grid";
    spec.axes.prophets = {ProphetKind::Gshare, ProphetKind::Bimodal};
    spec.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    spec.axes.criticBudgets = {Budget::B2KB};
    spec.axes.futureBits = {4};
    spec.branches = 2000;
    spec.workloads = {"mm.mpeg", "fp.swim"};
    return spec;
}

TEST(Runner, ResumeSkipsCompletedCells)
{
    const SweepSpec spec = smallGrid();
    const std::size_t total = spec.cells().size();
    ASSERT_EQ(total, 8u); // 2 prophets x {none, critic} x 2 workloads

    const std::string path =
        testing::TempDir() + "pcbp_resume_test.jsonl";
    std::remove(path.c_str());

    // "Interrupted" run: only 3 cells land in the store.
    {
        ResultStore store(path);
        SweepRunOptions opt;
        opt.jobs = 1;
        opt.maxCells = 3;
        const SweepRunSummary s = runSweep(spec, store, opt);
        EXPECT_EQ(s.totalCells, total);
        EXPECT_EQ(s.skippedCells, 0u);
        EXPECT_EQ(s.executedCells, 3u);
    }
    // The re-run computes only the delta.
    {
        ResultStore store(path);
        EXPECT_EQ(store.size(), 3u);
        SweepRunOptions opt;
        opt.jobs = 1;
        const SweepRunSummary s = runSweep(spec, store, opt);
        EXPECT_EQ(s.skippedCells, 3u);
        EXPECT_EQ(s.executedCells, total - 3);
        EXPECT_EQ(store.size(), total);
    }
    // A third run is a no-op.
    {
        ResultStore store(path);
        const SweepRunSummary s = runSweep(spec, store, {});
        EXPECT_EQ(s.skippedCells, total);
        EXPECT_EQ(s.executedCells, 0u);
    }
    std::remove(path.c_str());
}

TEST(Runner, JobsDoNotAffectResults)
{
    const SweepSpec spec = smallGrid();
    const std::string p1 = testing::TempDir() + "pcbp_jobs1.jsonl";
    const std::string p4 = testing::TempDir() + "pcbp_jobs4.jsonl";
    std::remove(p1.c_str());
    std::remove(p4.c_str());
    {
        ResultStore store(p1);
        SweepRunOptions opt;
        opt.jobs = 1;
        runSweep(spec, store, opt);
    }
    {
        ResultStore store(p4);
        SweepRunOptions opt;
        opt.jobs = 4;
        runSweep(spec, store, opt);
    }
    // Byte-identical stores — same results, same order — and
    // therefore byte-identical exports.
    EXPECT_EQ(slurp(p1), slurp(p4));
    const ResultStore s1(p1), s4(p4);
    EXPECT_EQ(ResultStore::exportCsv(s1.all()),
              ResultStore::exportCsv(s4.all()));
    EXPECT_EQ(ResultStore::exportJson(s1.all()),
              ResultStore::exportJson(s4.all()));
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

TEST(Runner, KilledMidGridThenResumedIsByteIdentical)
{
    // The store's full invariant: however a grid's execution is cut
    // up — different --jobs, interruption after any prefix, a kill
    // that tears the final line — the finished JSONL file (and so
    // every export) is byte-identical to an uninterrupted run.
    const SweepSpec spec = smallGrid();
    const std::size_t total = spec.cells().size();

    const std::string ref_path =
        testing::TempDir() + "pcbp_bytes_ref.jsonl";
    std::remove(ref_path.c_str());
    {
        ResultStore store(ref_path);
        SweepRunOptions opt;
        opt.jobs = 1;
        runSweep(spec, store, opt);
    }
    const std::string reference = slurp(ref_path);
    ASSERT_FALSE(reference.empty());

    // Interrupt after every possible prefix length, resume with a
    // different worker count each time.
    const std::string path =
        testing::TempDir() + "pcbp_bytes_cut.jsonl";
    for (std::size_t cut = 1; cut < total; ++cut) {
        std::remove(path.c_str());
        {
            ResultStore store(path);
            SweepRunOptions opt;
            opt.jobs = 1 + unsigned(cut % 4);
            opt.maxCells = cut;
            runSweep(spec, store, opt);
        }
        {
            ResultStore store(path);
            SweepRunOptions opt;
            opt.jobs = 8;
            const SweepRunSummary s = runSweep(spec, store, opt);
            EXPECT_EQ(s.skippedCells, cut);
        }
        EXPECT_EQ(slurp(path), reference) << "cut at " << cut;
    }

    // A kill that tears the final line mid-record: resume must drop
    // the tail, rerun that cell, and still converge byte-identical.
    {
        std::remove(path.c_str());
        std::ofstream out(path, std::ios::binary);
        const std::size_t keep = reference.find('\n', 0) + 1;
        out << reference.substr(0, keep)
            << reference.substr(keep, 40); // torn second line
    }
    {
        ResultStore store(path);
        EXPECT_EQ(store.size(), 1u);
        runSweep(spec, store, {});
    }
    EXPECT_EQ(slurp(path), reference) << "after torn-line resume";

    std::remove(ref_path.c_str());
    std::remove(path.c_str());
}

SweepSpec
timingGridForBatch()
{
    SweepSpec spec;
    spec.name = "timing-batch-grid";
    spec.timing = true;
    spec.axes.prophets = {ProphetKind::Gshare};
    spec.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    spec.axes.criticBudgets = {Budget::B2KB};
    spec.axes.futureBits = {4};
    spec.branches = 2000;
    spec.warmups = {300, 800};
    spec.workloads = {"mm.mpeg"};
    return spec;
}

TEST(Runner, BatchModeIsByteIdenticalToReplayAndFork)
{
    // A grid exercising every batch-lane shape: a warmup axis (fork
    // groups that peel inside the lockstep pass), an oracle axis
    // (forced singleton lanes), and two workloads (two batch units).
    // The store — and every export — must be byte-identical across
    // replay (--no-fork), chain (fork), and batch execution.
    SweepSpec spec = smallGrid();
    spec.warmups = {400, 1200};
    spec.axes.oracleFutureBits = {false, true};

    const auto runWith = [&](const std::string &stem, bool fork,
                             bool batch) {
        const std::string path = testing::TempDir() + stem;
        std::remove(path.c_str());
        ResultStore store(path);
        SweepRunOptions opt;
        opt.jobs = 2;
        opt.fork = fork;
        opt.batch = batch;
        runSweep(spec, store, opt);
        const std::string bytes = slurp(path);
        std::remove(path.c_str());
        return bytes;
    };

    const std::string replay =
        runWith("pcbp_batch_replay.jsonl", false, false);
    ASSERT_FALSE(replay.empty());
    EXPECT_EQ(runWith("pcbp_batch_chain.jsonl", true, false), replay);
    EXPECT_EQ(runWith("pcbp_batch_on.jsonl", true, true), replay);

    // Timing mode through the batch path too.
    spec = timingGridForBatch();
    const std::string treplay =
        runWith("pcbp_batch_treplay.jsonl", false, false);
    ASSERT_FALSE(treplay.empty());
    EXPECT_EQ(runWith("pcbp_batch_ton.jsonl", true, true), treplay);
}

TEST(Runner, BatchModeReportsAmortizationCounters)
{
    SweepSpec spec = smallGrid();
    spec.warmups = {400, 1200};

    StatRegistry reg;
    ResultStore store;
    SweepRunOptions opt;
    opt.jobs = 1;
    opt.batch = true;
    opt.stats = &reg;
    runSweep(spec, store, opt);

    const std::string json = reg.toJson();
    // Two workloads -> two batch units; the warmup axis gives every
    // (spec, workload) a two-member fork group, so snapshots fired
    // and both amortizations (warmup re-simulation, shared stream
    // production) must be visible.
    EXPECT_NE(json.find("\"sweep.batch.units\":2"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("sweep.batch.snapshots"), std::string::npos);
    EXPECT_NE(json.find("sweep.batch.warmup_branches_saved"),
              std::string::npos);
    EXPECT_NE(json.find("sweep.batch.stream_records_saved"),
              std::string::npos);
    EXPECT_NE(json.find("sweep.batch.source_window_peak"),
              std::string::npos);
}

TEST(Runner, BatchedStoreMatchesCommittedGolden)
{
    // The batch path is pinned by a committed artifact, not only by
    // in-process agreement with the replay path: this golden store
    // was generated with batching ON, and the batching-OFF run must
    // reproduce the same bytes. Drift in either path — or any
    // divergence between them — fails against the same file.
    SweepSpec spec = smallGrid();
    spec.warmups = {400, 1200};
    spec.axes.oracleFutureBits = {false, true};

    const auto storeBytes = [&](bool batch) {
        const std::string path =
            testing::TempDir() + "pcbp_batch_golden.jsonl";
        std::remove(path.c_str());
        {
            ResultStore store(path);
            SweepRunOptions opt;
            opt.jobs = 2;
            opt.batch = batch;
            runSweep(spec, store, opt);
        }
        const std::string bytes = slurp(path);
        std::remove(path.c_str());
        return bytes;
    };

    const std::string batched = storeBytes(true);
    ASSERT_FALSE(batched.empty());
    EXPECT_EQ(storeBytes(false), batched)
        << "batched and unbatched stores diverge";
    expectMatchesGolden(batched, "sweep_batch_store.jsonl");
}

TEST(Runner, InMemoryStoreServesPortedBenches)
{
    SweepSpec spec = smallGrid();
    spec.axes.prophets = {ProphetKind::Gshare};
    ResultStore store;
    runSweep(spec, store);
    // Every cell is retrievable and carries real counters.
    for (const auto &cell : spec.cells()) {
        const EngineStats st = store.statsFor(cell);
        EXPECT_GT(st.committedBranches, 0u) << cell.key();
    }
    // With a critic, override machinery must have engaged somewhere.
    std::uint64_t overrides = 0;
    for (const auto &r : store.all())
        overrides += r.criticOverrides;
    EXPECT_GT(overrides, 0u);
}

TEST(Runner, MissingCellIsFatal)
{
    const SweepSpec spec = smallGrid();
    const ResultStore store;
    EXPECT_EXIT(store.statsFor(spec.cells()[0]),
                testing::ExitedWithCode(1), "no result for cell");
}

SweepSpec
timingGrid()
{
    SweepSpec spec;
    spec.name = "timing-grid";
    spec.timing = true;
    spec.axes.prophets = {ProphetKind::Gshare};
    spec.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    spec.axes.criticBudgets = {Budget::B2KB};
    spec.axes.futureBits = {4};
    spec.branches = 2000;
    spec.workloads = {"mm.mpeg"};
    return spec;
}

TEST(Runner, TimingGridRunsTheTimingModel)
{
    const SweepSpec spec = timingGrid();
    ResultStore store;
    const SweepRunSummary s = runSweep(spec, store);
    EXPECT_EQ(s.executedCells, 2u);
    for (const auto &cell : spec.cells()) {
        const CellResult *r = store.find(cell.key());
        ASSERT_NE(r, nullptr);
        EXPECT_TRUE(r->timing);
        const TimingStats st = store.timingStatsFor(cell);
        EXPECT_GT(st.cycles, 0u);
        EXPECT_GT(st.fetchedUops, st.committedUops);
        EXPECT_GT(st.upc(), 0.0);
        // Wrong accessor for the mode is a bug in the caller.
        EXPECT_EXIT(store.statsFor(cell), testing::ExitedWithCode(1),
                    "timing stats");
    }
    const double upc =
        meanUpcCells(store, spec.cells(),
                     [](const SweepCell &c) { return !c.spec.critic; });
    EXPECT_GT(upc, 0.0);
}

TEST(Runner, TimingGridMatchesDirectTimingRun)
{
    const SweepSpec spec = timingGrid();
    ResultStore store;
    runSweep(spec, store);
    for (const auto &cell : spec.cells()) {
        const TimingStats direct = runTiming(
            *cell.workload, cell.spec, cell.timingConfig());
        const TimingStats stored = store.timingStatsFor(cell);
        EXPECT_EQ(stored.cycles, direct.cycles) << cell.key();
        EXPECT_EQ(stored.committedUops, direct.committedUops);
        EXPECT_EQ(stored.finalMispredicts, direct.finalMispredicts);
        EXPECT_EQ(stored.fetchedUops, direct.fetchedUops);
    }
}

TEST(Runner, TimingAndAccuracyCellsShareAStoreFile)
{
    const std::string path =
        testing::TempDir() + "pcbp_mixed_store.jsonl";
    std::remove(path.c_str());
    SweepSpec acc = smallGrid();
    acc.axes.prophets = {ProphetKind::Gshare};
    const SweepSpec tim = timingGrid();
    {
        ResultStore store(path);
        runSweep(acc, store);
        runSweep(tim, store);
    }
    // Both kinds replay from disk with their counters intact.
    ResultStore reload(path);
    for (const auto &cell : acc.cells())
        EXPECT_GT(reload.statsFor(cell).committedBranches, 0u);
    for (const auto &cell : tim.cells())
        EXPECT_GT(reload.timingStatsFor(cell).cycles, 0u);
    std::remove(path.c_str());
}

TEST(ResultStore, LoadsStoresWrittenBeforeTheTimingFields)
{
    // Resume compatibility: stores written before the timing-mode /
    // ablation-axis fields existed must keep loading (their cells
    // are all accuracy-mode with default knobs). Regression for a
    // bug where the loader required the new fields, aborting on
    // multi-line legacy stores and truncating single-line ones.
    auto legacyLine = [](const char *key) {
        std::string line = sampleResult(key).toJson();
        for (const char *field :
             {",\"filter_tag_bits\":0", ",\"oracle\":0",
              ",\"timing\":0", ",\"cycles\":0",
              ",\"fetched_uops\":0"}) {
            const auto at = line.find(field);
            EXPECT_NE(at, std::string::npos) << field;
            line.erase(at, std::string(field).size());
        }
        return line;
    };

    CellResult r;
    ASSERT_TRUE(CellResult::tryFromJson(legacyLine("k1"), r));
    EXPECT_FALSE(r.timing);
    EXPECT_FALSE(r.oracleFutureBits);
    EXPECT_EQ(r.filterTagBits, 0u);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.finalMispredicts, 111u);

    const std::string path =
        testing::TempDir() + "pcbp_legacy_store.jsonl";
    std::remove(path.c_str());
    {
        std::ofstream out(path);
        out << legacyLine("k1") << "\n" << legacyLine("k2") << "\n";
    }
    const std::string before = slurp(path);
    {
        ResultStore store(path);
        EXPECT_EQ(store.size(), 2u);
        EXPECT_TRUE(store.has("k1"));
        store.put(sampleResult("k3")); // appends in the new format
    }
    // Nothing was truncated, and the mixed-format file replays.
    EXPECT_EQ(slurp(path).substr(0, before.size()), before);
    const ResultStore reload(path);
    EXPECT_EQ(reload.size(), 3u);
    std::remove(path.c_str());
}

TEST(ResultStore, TimingJsonRoundTrips)
{
    CellResult r = sampleResult("w=m;md=t");
    r.timing = true;
    r.cycles = 123456;
    r.fetchedUops = 98765;
    r.oracleFutureBits = true;
    r.filterTagBits = 6;
    const CellResult back = CellResult::fromJson(r.toJson());
    EXPECT_TRUE(back.timing);
    EXPECT_EQ(back.cycles, 123456u);
    EXPECT_EQ(back.fetchedUops, 98765u);
    EXPECT_TRUE(back.oracleFutureBits);
    EXPECT_EQ(back.filterTagBits, 6u);
    EXPECT_EQ(back.toJson(), r.toJson());
    EXPECT_NEAR(back.upc(), 30000.0 / 123456.0, 1e-12);
}

} // namespace
} // namespace pcbp
