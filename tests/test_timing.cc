/**
 * @file
 * Unit tests for the spec-core speculation queue (the timing model's
 * FTQ) and the cycle-level timing model: bounds, bandwidth limits,
 * flush behavior, and agreement with the accuracy engine on what
 * commits.
 */

#include <gtest/gtest.h>

#include "predictors/static_pred.hh"
#include "sim/driver.hh"
#include "sim/spec_core.hh"
#include "sim/timing.hh"

namespace pcbp
{
namespace
{

/** Two-block always-taken loop for queue-mechanics tests. */
Program
loopProgram()
{
    Program p("loop");
    for (int i = 0; i < 2; ++i) {
        BasicBlock b;
        b.branchPc = 0x1000 + i * 16;
        b.numUops = 8;
        b.takenTarget = static_cast<BlockId>(1 - i);
        b.fallthroughTarget = static_cast<BlockId>(1 - i);
        b.behavior = std::make_unique<BiasedBehavior>(1.0, i + 1);
        p.addBlock(std::move(b));
    }
    p.validate();
    return p;
}

// --------------------------------------------- spec-core queue (FTQ)

TEST(SpecCoreQueue, FetchFillsFifoInSpeculationOrder)
{
    Program p = loopProgram();
    auto h = prophetAlone(ProphetKind::AlwaysTaken, Budget::B2KB).build();
    SpecCoreConfig cc;
    cc.useBtb = false;
    SpecCore<FtqPayload> core(p, *h, cc);
    core.beginRun(nullptr, 0, p.entry());

    for (int i = 0; i < 4; ++i) {
        auto &e = core.fetchNext();
        e.payload.uopsLeft = e.numUops;
    }
    EXPECT_EQ(core.queueSize(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(core.at(i).traceIdx, i);
        EXPECT_EQ(core.at(i).block, BlockId(i % 2));
        EXPECT_EQ(core.at(i).payload.uopsLeft, 8u);
    }
    const auto head = core.popFront();
    EXPECT_EQ(head.traceIdx, 0u);
    EXPECT_EQ(core.front().traceIdx, 1u);
    EXPECT_EQ(core.queueSize(), 3u);
}

TEST(SpecCoreQueue, OldestUncriticized)
{
    Program p = loopProgram();
    auto h = prophetAlone(ProphetKind::AlwaysTaken, Budget::B2KB).build();
    SpecCoreConfig cc;
    cc.useBtb = false;
    SpecCore<FtqPayload> core(p, *h, cc);
    core.beginRun(nullptr, 0, p.entry());

    for (int i = 0; i < 4; ++i)
        core.fetchNext();
    core.at(0).critiqued = true;
    core.at(1).critiqued = true;
    auto idx = core.oldestUncriticized();
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, 2u);

    core.at(2).critiqued = true;
    core.at(3).critiqued = true;
    EXPECT_FALSE(core.oldestUncriticized().has_value());
}

TEST(SpecCoreQueue, OverrideFlushesYoungerAndRedirects)
{
    // An always-taken program with an always-not-taken prophet and a
    // tagged-gshare critic: once the critic learns, its disagree
    // critique must flush every younger queued prediction.
    Program p = loopProgram();
    auto h = hybridSpec(ProphetKind::AlwaysNotTaken, Budget::B2KB,
                        CriticKind::TaggedGshare, Budget::B2KB, 2)
                 .build();
    SpecCoreConfig cc;
    cc.useBtb = false;
    SpecCore<FtqPayload> core(p, *h, cc);
    core.beginRun(nullptr, 0, p.entry());

    // Train the critic: fetch, critique, commit a few rounds.
    for (int round = 0; round < 64; ++round) {
        while (core.queueSize() < 6)
            core.fetchNext();
        if (!core.front().critiqued)
            core.critique(0);
        auto r = core.popFront();
        core.commitTrain(r, true);
        if (r.finalPred != true) {
            core.clearQueue();
            core.recoverAndRedirect(r, true);
        }
    }

    while (core.queueSize() < 6)
        core.fetchNext();
    ASSERT_FALSE(core.front().critiqued);
    const CritiqueOutcome out = core.critique(0);
    ASSERT_TRUE(out.overrode) << "trained critic must disagree";
    EXPECT_EQ(out.squashed, 5u);
    EXPECT_EQ(core.queueSize(), 1u);
    EXPECT_TRUE(core.front().critiqued);
    EXPECT_TRUE(core.front().finalPred);
    EXPECT_EQ(core.specIndex(), core.front().traceIdx + 1);
}

TEST(SpecCoreQueue, ClearQueueEmpties)
{
    Program p = loopProgram();
    auto h = prophetAlone(ProphetKind::AlwaysTaken, Budget::B2KB).build();
    SpecCoreConfig cc;
    cc.useBtb = false;
    SpecCore<FtqPayload> core(p, *h, cc);
    core.beginRun(nullptr, 0, p.entry());
    core.fetchNext();
    core.fetchNext();
    EXPECT_EQ(core.queueSize(), 2u);
    core.clearQueue();
    EXPECT_TRUE(core.queueEmpty());
}

// ----------------------------------------------------------------- Timing

TimingConfig
smallTiming(std::uint64_t branches = 20000)
{
    TimingConfig cfg;
    cfg.measureBranches = branches;
    cfg.warmupBranches = branches / 10;
    return cfg;
}

TEST(Timing, UpcBoundedByMachineWidth)
{
    const Workload &w = workloadByName("fp.swim");
    Program p = buildProgram(w);
    auto h = prophetAlone(ProphetKind::Perceptron, Budget::B16KB).build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_GT(st.upc(), 0.5);
    EXPECT_LE(st.upc(), 6.0) << "cannot beat the 6-uop fetch width";
}

TEST(Timing, CommitsConfiguredWork)
{
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    auto h = prophetAlone(ProphetKind::Gshare, Budget::B8KB).build();
    const auto cfg = smallTiming(10000);
    TimingSim sim(p, *h, cfg);
    const TimingStats st = sim.run();
    EXPECT_EQ(st.committedBranches, cfg.measureBranches);
    EXPECT_GT(st.committedUops, st.committedBranches * 4);
}

TEST(Timing, BetterPredictionHigherUpc)
{
    const Workload &w = workloadByName("int.crafty");
    Program p1 = buildProgram(w);
    auto good =
        prophetAlone(ProphetKind::Perceptron, Budget::B32KB).build();
    const double upc_good =
        TimingSim(p1, *good, smallTiming()).run().upc();

    Program p2 = buildProgram(w);
    auto bad =
        prophetAlone(ProphetKind::AlwaysNotTaken, Budget::B2KB).build();
    const double upc_bad =
        TimingSim(p2, *bad, smallTiming()).run().upc();

    EXPECT_GT(upc_good, upc_bad * 1.2)
        << "mispredict flushes must cost cycles";
}

TEST(Timing, FetchedAtLeastCommitted)
{
    const Workload &w = workloadByName("web.jbb");
    Program p = buildProgram(w);
    auto h = prophetAlone(ProphetKind::Gshare, Budget::B8KB).build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_GE(st.fetchedUops + 64, st.committedUops)
        << "every committed uop was fetched (within measure-window "
           "boundary fuzz)";
    EXPECT_GE(st.fetchedUops, st.wrongPathFetchedUops);
}

TEST(Timing, MispredictsCauseWrongPathFetch)
{
    const Workload &w = workloadByName("serv.tpcc");
    Program p = buildProgram(w);
    auto h = prophetAlone(ProphetKind::Gshare, Budget::B2KB).build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_GT(st.finalMispredicts, 0u);
    EXPECT_GT(st.wrongPathFetchedUops, 0u);
}

TEST(Timing, CriticOverridesHappenInFtq)
{
    const Workload &w = workloadByName("int.crafty");
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                        CriticKind::TaggedGshare, Budget::B8KB, 8)
                 .build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_GT(st.criticOverrides, 0u);
    EXPECT_GT(st.ftqEntriesFlushedByCritic, 0u);
}

TEST(Timing, PartialCritiquesRareAtEightBits)
{
    // §5's claim: <0.1% of the time the cache needs a prediction
    // whose critique lacks its future bits (8 fb, prophet 2x faster
    // than the critic). Allow some slack for our smaller runs.
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                        CriticKind::TaggedGshare, Budget::B8KB, 8)
                 .build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_LT(double(st.partialCritiques) / double(st.committedBranches),
              0.02);
}

TEST(Timing, DeterministicAcrossRuns)
{
    const Workload &w = workloadByName("ws.cad");
    const auto spec =
        hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 4);
    Program p1 = buildProgram(w);
    auto h1 = spec.build();
    const TimingStats a = TimingSim(p1, *h1, smallTiming()).run();
    Program p2 = buildProgram(w);
    auto h2 = spec.build();
    const TimingStats b = TimingSim(p2, *h2, smallTiming()).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
}

TEST(Timing, FtqDeeperThanFutureBitsRequired)
{
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                        CriticKind::TaggedGshare, Budget::B2KB, 12)
                 .build();
    TimingConfig cfg = smallTiming();
    cfg.ftqSize = 8;
    EXPECT_DEATH(TimingSim(p, *h, cfg),
                 "FTQ must be deeper than the future-bit count");
}

TEST(Timing, AgreesWithEngineOnCommittedWork)
{
    // The two simulators share the committed path: same workload,
    // same branch count => same committed uops.
    const Workload &w = workloadByName("fp.ammp");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);

    EngineConfig ecfg;
    ecfg.measureBranches = 15000;
    ecfg.warmupBranches = 1500;
    Program p1 = buildProgram(w);
    auto h1 = spec.build();
    const EngineStats es = Engine(p1, *h1, ecfg).run();

    TimingConfig tcfg;
    tcfg.measureBranches = 15000;
    tcfg.warmupBranches = 1500;
    Program p2 = buildProgram(w);
    auto h2 = spec.build();
    const TimingStats ts = TimingSim(p2, *h2, tcfg).run();

    EXPECT_EQ(es.committedBranches, ts.committedBranches);
    EXPECT_NEAR(double(es.committedUops), double(ts.committedUops),
                double(es.committedUops) * 0.01);
}

} // namespace
} // namespace pcbp
