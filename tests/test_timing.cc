/**
 * @file
 * Unit tests for the FTQ and the cycle-level timing model: bounds,
 * bandwidth limits, flush behavior, and agreement with the accuracy
 * engine on what commits.
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "sim/ftq.hh"
#include "sim/timing.hh"

namespace pcbp
{
namespace
{

FtqEntry
entry(BlockId b, bool critiqued = false)
{
    FtqEntry e;
    e.block = b;
    e.pc = 0x1000 + b * 16;
    e.numUops = 8;
    e.uopsLeft = 8;
    e.critiqued = critiqued;
    return e;
}

// -------------------------------------------------------------------- FTQ

TEST(Ftq, CapacityAndFifo)
{
    Ftq q(3);
    EXPECT_TRUE(q.empty());
    q.push(entry(0));
    q.push(entry(1));
    q.push(entry(2));
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.head().block, 0u);
    q.popHead();
    EXPECT_EQ(q.head().block, 1u);
    EXPECT_FALSE(q.full());
}

TEST(Ftq, OldestUncriticized)
{
    Ftq q(8);
    q.push(entry(0, true));
    q.push(entry(1, true));
    q.push(entry(2, false));
    q.push(entry(3, false));
    auto idx = q.oldestUncriticized();
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, 2u);
}

TEST(Ftq, OldestUncriticizedNoneWhenAllDone)
{
    Ftq q(4);
    q.push(entry(0, true));
    EXPECT_FALSE(q.oldestUncriticized().has_value());
}

TEST(Ftq, FlushYoungerThanKeepsPrefix)
{
    Ftq q(8);
    for (BlockId i = 0; i < 5; ++i)
        q.push(entry(i));
    EXPECT_EQ(q.flushYoungerThan(1), 3u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(1).block, 1u);
}

TEST(Ftq, FlushAll)
{
    Ftq q(8);
    q.push(entry(0));
    q.push(entry(1));
    EXPECT_EQ(q.flushAll(), 2u);
    EXPECT_TRUE(q.empty());
}

// ----------------------------------------------------------------- Timing

TimingConfig
smallTiming(std::uint64_t branches = 20000)
{
    TimingConfig cfg;
    cfg.measureBranches = branches;
    cfg.warmupBranches = branches / 10;
    return cfg;
}

TEST(Timing, UpcBoundedByMachineWidth)
{
    const Workload &w = workloadByName("fp.swim");
    Program p = buildProgram(w);
    auto h = prophetAlone(ProphetKind::Perceptron, Budget::B16KB).build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_GT(st.upc(), 0.5);
    EXPECT_LE(st.upc(), 6.0) << "cannot beat the 6-uop fetch width";
}

TEST(Timing, CommitsConfiguredWork)
{
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    auto h = prophetAlone(ProphetKind::Gshare, Budget::B8KB).build();
    const auto cfg = smallTiming(10000);
    TimingSim sim(p, *h, cfg);
    const TimingStats st = sim.run();
    EXPECT_EQ(st.committedBranches, cfg.measureBranches);
    EXPECT_GT(st.committedUops, st.committedBranches * 4);
}

TEST(Timing, BetterPredictionHigherUpc)
{
    const Workload &w = workloadByName("int.crafty");
    Program p1 = buildProgram(w);
    auto good =
        prophetAlone(ProphetKind::Perceptron, Budget::B32KB).build();
    const double upc_good =
        TimingSim(p1, *good, smallTiming()).run().upc();

    Program p2 = buildProgram(w);
    auto bad =
        prophetAlone(ProphetKind::AlwaysNotTaken, Budget::B2KB).build();
    const double upc_bad =
        TimingSim(p2, *bad, smallTiming()).run().upc();

    EXPECT_GT(upc_good, upc_bad * 1.2)
        << "mispredict flushes must cost cycles";
}

TEST(Timing, FetchedAtLeastCommitted)
{
    const Workload &w = workloadByName("web.jbb");
    Program p = buildProgram(w);
    auto h = prophetAlone(ProphetKind::Gshare, Budget::B8KB).build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_GE(st.fetchedUops + 64, st.committedUops)
        << "every committed uop was fetched (within measure-window "
           "boundary fuzz)";
    EXPECT_GE(st.fetchedUops, st.wrongPathFetchedUops);
}

TEST(Timing, MispredictsCauseWrongPathFetch)
{
    const Workload &w = workloadByName("serv.tpcc");
    Program p = buildProgram(w);
    auto h = prophetAlone(ProphetKind::Gshare, Budget::B2KB).build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_GT(st.finalMispredicts, 0u);
    EXPECT_GT(st.wrongPathFetchedUops, 0u);
}

TEST(Timing, CriticOverridesHappenInFtq)
{
    const Workload &w = workloadByName("int.crafty");
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                        CriticKind::TaggedGshare, Budget::B8KB, 8)
                 .build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_GT(st.criticOverrides, 0u);
    EXPECT_GT(st.ftqEntriesFlushedByCritic, 0u);
}

TEST(Timing, PartialCritiquesRareAtEightBits)
{
    // §5's claim: <0.1% of the time the cache needs a prediction
    // whose critique lacks its future bits (8 fb, prophet 2x faster
    // than the critic). Allow some slack for our smaller runs.
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                        CriticKind::TaggedGshare, Budget::B8KB, 8)
                 .build();
    TimingSim sim(p, *h, smallTiming());
    const TimingStats st = sim.run();
    EXPECT_LT(double(st.partialCritiques) / double(st.committedBranches),
              0.02);
}

TEST(Timing, DeterministicAcrossRuns)
{
    const Workload &w = workloadByName("ws.cad");
    const auto spec =
        hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 4);
    Program p1 = buildProgram(w);
    auto h1 = spec.build();
    const TimingStats a = TimingSim(p1, *h1, smallTiming()).run();
    Program p2 = buildProgram(w);
    auto h2 = spec.build();
    const TimingStats b = TimingSim(p2, *h2, smallTiming()).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
}

TEST(Timing, FtqDeeperThanFutureBitsRequired)
{
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                        CriticKind::TaggedGshare, Budget::B2KB, 12)
                 .build();
    TimingConfig cfg = smallTiming();
    cfg.ftqSize = 8;
    EXPECT_DEATH(TimingSim(p, *h, cfg),
                 "FTQ must be deeper than the future-bit count");
}

TEST(Timing, AgreesWithEngineOnCommittedWork)
{
    // The two simulators share the committed path: same workload,
    // same branch count => same committed uops.
    const Workload &w = workloadByName("fp.ammp");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);

    EngineConfig ecfg;
    ecfg.measureBranches = 15000;
    ecfg.warmupBranches = 1500;
    Program p1 = buildProgram(w);
    auto h1 = spec.build();
    const EngineStats es = Engine(p1, *h1, ecfg).run();

    TimingConfig tcfg;
    tcfg.measureBranches = 15000;
    tcfg.warmupBranches = 1500;
    Program p2 = buildProgram(w);
    auto h2 = spec.build();
    const TimingStats ts = TimingSim(p2, *h2, tcfg).run();

    EXPECT_EQ(es.committedBranches, ts.committedBranches);
    EXPECT_NEAR(double(es.committedUops), double(ts.committedUops),
                double(es.committedUops) * 0.01);
}

} // namespace
} // namespace pcbp
