/**
 * @file
 * PCBPTRC2 format-level property tests (DESIGN.md §13).
 *
 * The compressed indexed trace store earns its place only if it is
 * *invisible* to everything downstream:
 *
 * - lossless: random programs and adversarial random record payloads
 *   (dictionary exceptions included) survive PCBPTRC1 -> PCBPTRC2 ->
 *   PCBPTRC1 round trips, with the back-conversion byte-identical to
 *   the original file;
 * - stream-equivalent: CompressedTraceStream yields the exact record
 *   sequence TraceFileStream yields, through the generic dispatch
 *   entry points and through forks;
 * - O(1) seek: landing on an arbitrary ordinal via the footer index
 *   decodes at most one block (pinned by the blocksDecoded counter,
 *   exported as trace.store.* host stats);
 * - compact: >= 4x smaller than PCBPTRC1 on a recorded CFG-walk
 *   trace (the full 10M-branch criterion runs in test_longrun.cc);
 * - identified: `pcbp_trace info` output is deterministic and its
 *   schema is pinned by a golden.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "obs/stat_registry.hh"
#include "sim/committed_stream.hh"
#include "sim/driver.hh"
#include "workload/generator.hh"
#include "workload/trace.hh"
#include "workload/trace2.hh"

namespace pcbp
{
namespace
{

std::string
tmpPath(const char *stem)
{
    return testing::TempDir() + stem;
}

std::vector<unsigned char>
slurpBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

WorkloadRecipe
traceRecipe(std::uint64_t seed)
{
    WorkloadRecipe r;
    r.name = "trc2-" + std::to_string(seed);
    r.seed = seed;
    r.targetBlocks = 150 + unsigned(seed % 5) * 40;
    r.numChains = 4;
    r.numPhaseChains = 2;
    return r;
}

/** Adversarial payloads: extremes, id holes, and repeated block ids
 *  with *different* pc/uops, which force the per-record dictionary
 *  exception path a genuine CFG walk never takes. */
std::vector<CommittedBranch>
randomRecords(Rng &rng, std::size_t n)
{
    std::vector<CommittedBranch> t;
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        CommittedBranch r;
        switch (rng.nextBelow(8)) {
          case 0:
            r.block = 0;
            break;
          case 1:
            r.block = 0xffffffffu;
            break;
          default:
            r.block = BlockId(rng.nextBelow(64));
        }
        r.pc = rng.nextBelow(4) == 0 ? rng.next()
                                     : 0x400000 + (Addr(r.block) << 4);
        r.taken = rng.nextBool(0.5);
        r.numUops = rng.nextBelow(8) == 0
                        ? 0xffffffffu
                        : std::uint32_t(rng.nextBelow(64));
        t.push_back(r);
    }
    return t;
}

void
expectSameRecords(const std::vector<CommittedBranch> &a,
                  const std::vector<CommittedBranch> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].block, b[i].block) << "record " << i;
        ASSERT_EQ(a[i].pc, b[i].pc) << "record " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "record " << i;
        ASSERT_EQ(a[i].numUops, b[i].numUops) << "record " << i;
    }
}

// --------------------------------------------------- lossless store

TEST(Trace2, RandomProgramWalkRoundTripsThroughConversion)
{
    const std::string v1 = tmpPath("t2_walk.pcbptrc");
    const std::string v2 = tmpPath("t2_walk.pcbptrc2");
    const std::string back = tmpPath("t2_walk_back.pcbptrc");

    for (const std::uint64_t seed : {3u, 77u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Program p = generateProgram(traceRecipe(seed));
        const auto walk = walkProgram(p, 20000);
        saveTrace(v1, walk);

        EXPECT_EQ(convertTraceFile(v1, v2, true), walk.size());
        EXPECT_TRUE(isTrace2File(v2));
        EXPECT_FALSE(isTrace2File(v1));
        EXPECT_EQ(traceFileCount(v2), walk.size());

        // The generic loader dispatches on the magic: both files
        // deliver the identical record sequence.
        expectSameRecords(loadTrace(v2), walk);

        // Back-conversion is byte-identical, not merely equivalent.
        EXPECT_EQ(convertTraceFile(v2, back, false), walk.size());
        EXPECT_EQ(slurpBytes(back), slurpBytes(v1));

        // A CFG walk revisits each static branch with fixed pc/uops,
        // so the dictionary covers every record: expect real
        // compression, not just parity (>= 4x is the PR criterion).
        const auto info = Trace2Reader::open(v2)->info();
        const std::uint64_t v1_bytes =
            tracefmt::headerBytes + walk.size() * tracefmt::recordBytes;
        EXPECT_GE(double(v1_bytes) / double(info.fileBytes), 4.0);
    }
    std::remove(v1.c_str());
    std::remove(v2.c_str());
    std::remove(back.c_str());
}

TEST(Trace2, AdversarialRecordsRoundTripAtEveryBlockGeometry)
{
    const std::string v2 = tmpPath("t2_adv.pcbptrc2");
    Rng rng(20240);
    for (const std::uint32_t rpb : {1u, 3u, 64u, 4096u}) {
        for (int iter = 0; iter < 4; ++iter) {
            SCOPED_TRACE("rpb " + std::to_string(rpb) + " iter " +
                         std::to_string(iter));
            const auto records =
                randomRecords(rng, std::size_t(rng.nextBelow(700)));
            {
                Trace2Writer w(v2, rpb);
                for (const auto &r : records)
                    w.append(r);
                w.finish();
                EXPECT_EQ(w.written(), records.size());
            }
            expectSameRecords(loadTrace(v2), records);

            const auto reader = Trace2Reader::open(v2);
            EXPECT_EQ(reader->recordCount(), records.size());
            EXPECT_EQ(reader->numBlocks(),
                      (records.size() + rpb - 1) / rpb);
        }
    }
    std::remove(v2.c_str());
}

TEST(Trace2, EmptyTraceRoundTrips)
{
    const std::string v2 = tmpPath("t2_empty.pcbptrc2");
    {
        Trace2Writer w(v2);
        w.finish();
    }
    EXPECT_TRUE(isTrace2File(v2));
    EXPECT_EQ(traceFileCount(v2), 0u);
    EXPECT_TRUE(loadTrace(v2).empty());
    EXPECT_EQ(Trace2Reader::open(v2)->numBlocks(), 0u);
    std::remove(v2.c_str());
}

TEST(Trace2, SummariesAgreeAcrossFormats)
{
    const std::string v1 = tmpPath("t2_sum.pcbptrc");
    const std::string v2 = tmpPath("t2_sum.pcbptrc2");
    Program p = generateProgram(traceRecipe(11));
    saveTrace(v1, walkProgram(p, 9000));
    convertTraceFile(v1, v2, true);

    const TraceSummary a = summarizeTraceFile(v1);
    const TraceSummary b = summarizeTraceFile(v2);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    EXPECT_EQ(a.staticBranches, b.staticBranches);
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

// ------------------------------------------------- stream equivalence

TEST(Trace2, CompressedStreamMatchesTraceFileStreamRecordForRecord)
{
    const std::string v1 = tmpPath("t2_stream.pcbptrc");
    const std::string v2 = tmpPath("t2_stream.pcbptrc2");
    Program p = generateProgram(traceRecipe(21));
    const auto walk = walkProgram(p, 15000);
    saveTrace(v1, walk);
    convertTraceFile(v1, v2, true, 512);

    auto a = openTraceStream(v1);
    auto b = openTraceStream(v2);
    EXPECT_STREQ(a->backendName(), "trace_file");
    EXPECT_STREQ(b->backendName(), "trace2");
    ASSERT_EQ(a->length(), walk.size());
    ASSERT_EQ(b->length(), walk.size());

    for (std::uint64_t i = 0; i < walk.size(); ++i) {
        const CommittedBranch *ra = a->at(i);
        const CommittedBranch *rb = b->at(i);
        ASSERT_NE(ra, nullptr);
        ASSERT_NE(rb, nullptr);
        ASSERT_EQ(ra->block, rb->block) << "record " << i;
        ASSERT_EQ(ra->pc, rb->pc) << "record " << i;
        ASSERT_EQ(ra->taken, rb->taken) << "record " << i;
        ASSERT_EQ(ra->numUops, rb->numUops) << "record " << i;
        a->release(i);
        b->release(i);
    }
    EXPECT_EQ(a->at(walk.size()), nullptr);
    EXPECT_EQ(b->at(walk.size()), nullptr);
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST(Trace2, CompressedStreamForkContinuesIdentically)
{
    const std::string v1 = tmpPath("t2_fork.pcbptrc");
    const std::string v2 = tmpPath("t2_fork.pcbptrc2");
    Program p = generateProgram(traceRecipe(31));
    const auto walk = walkProgram(p, 6000);
    saveTrace(v1, walk);
    convertTraceFile(v1, v2, true, 256);

    auto s = openTraceStream(v2);
    for (std::uint64_t i = 0; i < 2500; ++i) {
        ASSERT_NE(s->at(i), nullptr);
        s->release(i + 1);
    }
    auto fork = s->forkStream();
    for (std::uint64_t i = 2500; i < walk.size(); ++i) {
        const CommittedBranch *rf = fork->at(i);
        ASSERT_NE(rf, nullptr);
        ASSERT_EQ(rf->block, walk[std::size_t(i)].block) << i;
        ASSERT_EQ(rf->taken, walk[std::size_t(i)].taken) << i;
        fork->release(i + 1);
    }
    EXPECT_EQ(fork->at(walk.size()), nullptr);
    // The original is untouched by the fork's progress.
    ASSERT_NE(s->at(2500), nullptr);
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

// ------------------------------------------------------- O(1) seek

TEST(Trace2, IndexSeekDecodesAtMostOneBlock)
{
    const std::string v1 = tmpPath("t2_seek.pcbptrc");
    const std::string v2 = tmpPath("t2_seek.pcbptrc2");
    Program p = generateProgram(traceRecipe(41));
    const auto walk = walkProgram(p, 10000);
    saveTrace(v1, walk);
    constexpr std::uint32_t rpb = 128;
    convertTraceFile(v1, v2, true, rpb);

    Rng rng(99);
    for (int iter = 0; iter < 20; ++iter) {
        const std::uint64_t ordinal = rng.nextBelow(walk.size());
        CompressedTraceStream s(v2, ordinal);
        EXPECT_EQ(s.seeks(), 1u);
        EXPECT_EQ(s.blocksDecoded(), 0u) << "decode must be lazy";

        // Land on the ordinal and read to the end of its block: one
        // decode total, regardless of where in the file it lives.
        const std::uint64_t block_end =
            std::min<std::uint64_t>((ordinal / rpb + 1) * rpb,
                                    walk.size());
        for (std::uint64_t i = ordinal; i < block_end; ++i) {
            const CommittedBranch *r = s.at(i);
            ASSERT_NE(r, nullptr);
            ASSERT_EQ(r->block, walk[std::size_t(i)].block)
                << "ordinal " << ordinal << " record " << i;
            ASSERT_EQ(r->pc, walk[std::size_t(i)].pc);
            ASSERT_EQ(r->taken, walk[std::size_t(i)].taken);
            ASSERT_EQ(r->numUops, walk[std::size_t(i)].numUops);
            s.release(i);
        }
        EXPECT_EQ(s.blocksDecoded(), 1u)
            << "seek to " << ordinal << " decoded more than one block";
    }

    // The generic factory honors the same bound on both formats.
    auto seeked = openTraceStreamAt(v2, walk.size() / 2);
    ASSERT_NE(seeked->at(walk.size() / 2), nullptr);
    auto seeked1 = openTraceStreamAt(v1, walk.size() / 2);
    ASSERT_NE(seeked1->at(walk.size() / 2), nullptr);
    EXPECT_EQ(seeked->at(walk.size() / 2)->pc,
              seeked1->at(walk.size() / 2)->pc);
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

// ------------------------------------------------ replay + host stats

TEST(Trace2, EngineReplayMatchesAcrossFormatsAndExportsStoreStats)
{
    const std::string v1 = tmpPath("t2_replay.pcbptrc");
    const std::string v2 = tmpPath("t2_replay.pcbptrc2");
    Program src = generateProgram(traceRecipe(51));
    saveTrace(v1, walkProgram(src, 8000));
    convertTraceFile(v1, v2, true, 1024);

    const HybridSpec spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8);
    EngineConfig cfg;
    cfg.warmupBranches = 800;
    cfg.measureBranches = 7200;

    const auto replay = [&](const std::string &path, StatRegistry &reg) {
        Program p = reconstructProgramFromTrace(path, "t2-replay");
        auto h = spec.build();
        EngineConfig c = cfg;
        c.statsOut = &reg;
        auto stream = openTraceStream(path);
        return Engine(p, *h, c).run(*stream);
    };

    StatRegistry ra, rb;
    const EngineStats sa = replay(v1, ra);
    const EngineStats sb = replay(v2, rb);
    EXPECT_EQ(sa.committedBranches, sb.committedBranches);
    EXPECT_EQ(sa.committedUops, sb.committedUops);
    EXPECT_EQ(sa.finalMispredicts, sb.finalMispredicts);
    EXPECT_EQ(sa.criticOverrides, sb.criticOverrides);

    // The backends differ only where they are allowed to: the sim
    // section's backend tag, and the host-only trace.store.* block.
    EXPECT_EQ(ra.simValue("stream.produced"),
              rb.simValue("stream.produced"));
    EXPECT_EQ(ra.simValue("stream.backend.trace_file"), 1u);
    EXPECT_EQ(rb.simValue("stream.backend.trace2"), 1u);
    EXPECT_EQ(ra.toJson().find("trace.store."), std::string::npos);
    EXPECT_NE(rb.toJson().find("\"trace.store.blocks_decoded\""),
              std::string::npos);
    EXPECT_NE(rb.toJson().find("\"trace.store.bytes_mapped\""),
              std::string::npos);
    EXPECT_NE(rb.toJson().find("\"trace.store.seeks\""),
              std::string::npos);
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

// ----------------------------------------------------- info schema

TEST(Trace2, InfoRenderingIsDeterministicAndSchemaStable)
{
    const std::string v1 = tmpPath("t2_info.pcbptrc");
    const std::string v2 = tmpPath("t2_info.pcbptrc2");
    Program p = generateProgram(traceRecipe(61));
    saveTrace(v1, walkProgram(p, 5000));
    convertTraceFile(v1, v2, true);

    const std::string a = renderTraceInfo(v2);
    EXPECT_EQ(a, renderTraceInfo(v2)) << "info must be deterministic";

    // Schema: the exact key sequence `pcbp_trace info` promises (the
    // CI trace-smoke job greps the same keys from the CLI).
    const auto keysOf = [](const std::string &body) {
        std::vector<std::string> keys;
        std::istringstream is(body);
        std::string line;
        while (std::getline(is, line))
            keys.push_back(line.substr(0, line.find(' ')));
        return keys;
    };
    const std::vector<std::string> v2Keys = {
        "format",      "version",          "records",
        "records_per_block", "blocks",     "static_branches",
        "file_bytes",  "index_bytes",      "bytes_per_record",
        "v1_bytes",    "ratio_vs_v1",
    };
    EXPECT_EQ(keysOf(a), v2Keys);
    const std::vector<std::string> v1Keys = {
        "format", "records", "file_bytes", "bytes_per_record"};
    EXPECT_EQ(keysOf(renderTraceInfo(v1)), v1Keys);

    // No path leakage: moving the file cannot change the output.
    const std::string moved = tmpPath("t2_info_moved.bin");
    ASSERT_EQ(std::rename(v2.c_str(), moved.c_str()), 0);
    EXPECT_EQ(renderTraceInfo(moved), a);

    std::remove(v1.c_str());
    std::remove(moved.c_str());
}

} // namespace
} // namespace pcbp
