/**
 * @file
 * Property/fuzz tests for the PCBPTRC1 and PCBPTRC2 trace parsers.
 *
 * Properties:
 * - write -> read round-trips exactly, for randomized record
 *   payloads across the whole value range (including extremes);
 * - malformed input — truncation at any boundary, corrupted magic or
 *   version, a corrupt footer index, mid-block torn writes, bit
 *   flips anywhere in the file — is a graceful error through the
 *   try* entry points (and a clean exit(1) through the fatal
 *   wrappers), never a crash or out-of-bounds read. The PCBPTRC2
 *   reader mmaps the file, so every decode bound is exercised
 *   directly against the raw mapping. The ASan+UBSan CI job runs
 *   this file in the fast set, so any parser overread trips the
 *   sanitizers here.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "workload/trace.hh"
#include "workload/trace2.hh"

namespace pcbp
{
namespace
{

std::string
tmpPath(const char *stem)
{
    return testing::TempDir() + stem;
}

std::vector<CommittedBranch>
randomTrace(Rng &rng, std::size_t n)
{
    std::vector<CommittedBranch> t;
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        CommittedBranch r;
        // Mix extremes in with ordinary values.
        switch (rng.nextBelow(8)) {
          case 0:
            r.block = 0;
            break;
          case 1:
            r.block = 0xffffffffu;
            break;
          default:
            r.block = BlockId(rng.nextBelow(1u << 20));
        }
        r.pc = rng.next();
        r.taken = rng.nextBool(0.5);
        r.numUops = rng.nextBelow(4) == 0
                        ? 0xffffffffu
                        : std::uint32_t(rng.nextBelow(64));
        t.push_back(r);
    }
    return t;
}

std::vector<unsigned char>
slurpBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path,
           const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

/** Scan via the non-fatal entry point, discarding records. */
bool
tryScan(const std::string &path, std::string &error)
{
    return tryScanTraceFile(
        path, [](const CommittedBranch &) {}, error);
}

// -------------------------------------------------------- round trip

TEST(TraceFuzz, RoundTripRandomTraces)
{
    const std::string path = tmpPath("fuzz_roundtrip.pcbptrc");
    Rng rng(2024);
    for (int iter = 0; iter < 10; ++iter) {
        const auto trace =
            randomTrace(rng, 1 + std::size_t(rng.nextBelow(500)));
        saveTrace(path, trace);

        EXPECT_EQ(traceFileCount(path), trace.size());
        const auto back = loadTrace(path);
        ASSERT_EQ(back.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(back[i].block, trace[i].block);
            EXPECT_EQ(back[i].pc, trace[i].pc);
            EXPECT_EQ(back[i].taken, trace[i].taken);
            EXPECT_EQ(back[i].numUops, trace[i].numUops);
        }
        const TraceSummary file = summarizeTraceFile(path);
        const TraceSummary mem = summarizeTrace(trace);
        EXPECT_EQ(file.branches, mem.branches);
        EXPECT_EQ(file.uops, mem.uops);
        EXPECT_EQ(file.takenBranches, mem.takenBranches);
        EXPECT_EQ(file.staticBranches, mem.staticBranches);
    }
    std::remove(path.c_str());
}

TEST(TraceFuzz, EmptyTraceRoundTrips)
{
    const std::string path = tmpPath("fuzz_empty.pcbptrc");
    saveTrace(path, {});
    EXPECT_EQ(traceFileCount(path), 0u);
    EXPECT_TRUE(loadTrace(path).empty());
    std::remove(path.c_str());
}

// -------------------------------------------------------- truncation

TEST(TraceFuzz, TruncationAtEveryBoundaryIsAGracefulError)
{
    const std::string good = tmpPath("fuzz_trunc_src.pcbptrc");
    const std::string cut = tmpPath("fuzz_trunc_cut.pcbptrc");
    Rng rng(7);
    saveTrace(good, randomTrace(rng, 40));
    const auto bytes = slurpBytes(good);
    ASSERT_EQ(bytes.size(),
              tracefmt::headerBytes + 40 * tracefmt::recordBytes);

    // Headers cut anywhere, and bodies cut mid-record and at every
    // record boundary short of the promised count, must all error.
    std::vector<std::size_t> cuts;
    for (std::size_t n = 0; n < tracefmt::headerBytes; ++n)
        cuts.push_back(n);
    Rng pick(99);
    for (int i = 0; i < 40; ++i)
        cuts.push_back(tracefmt::headerBytes +
                       std::size_t(pick.nextBelow(
                           std::uint64_t(bytes.size()) -
                           tracefmt::headerBytes)));
    for (const std::size_t n : cuts) {
        writeBytes(cut, {bytes.begin(), bytes.begin() + long(n)});
        std::string error;
        EXPECT_FALSE(tryScan(cut, error)) << "cut at " << n;
        EXPECT_FALSE(error.empty()) << "cut at " << n;
    }

    // The fatal wrapper exits cleanly (no abort, no crash).
    writeBytes(cut, {bytes.begin(), bytes.begin() + 20});
    EXPECT_EXIT(loadTrace(cut), testing::ExitedWithCode(1),
                "truncated");
    std::remove(good.c_str());
    std::remove(cut.c_str());
}

TEST(TraceFuzz, MissingFileIsAGracefulError)
{
    std::string error;
    EXPECT_FALSE(tryScan(tmpPath("fuzz_does_not_exist.pcbptrc"), error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// ------------------------------------------------------ corrupt magic

TEST(TraceFuzz, CorruptMagicIsRejectedByteByByte)
{
    const std::string path = tmpPath("fuzz_magic.pcbptrc");
    Rng rng(13);
    const auto trace = randomTrace(rng, 8);
    saveTrace(path, trace);
    const auto bytes = slurpBytes(path);

    for (std::size_t i = 0; i < 8; ++i) {
        auto mut = bytes;
        mut[i] ^= 0x40;
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan(path, error)) << "magic byte " << i;
        EXPECT_NE(error.find("bad magic"), std::string::npos);
    }

    // Fatal wrapper: clean exit, not a crash.
    EXPECT_EXIT(traceFileCount(path), testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

// ---------------------------------------------------------- bit flips

TEST(TraceFuzz, SingleBitFlipsNeverCrashTheParser)
{
    const std::string good = tmpPath("fuzz_flip_src.pcbptrc");
    const std::string bad = tmpPath("fuzz_flip_mut.pcbptrc");
    Rng rng(31337);
    const auto trace = randomTrace(rng, 64);
    saveTrace(good, trace);
    const auto bytes = slurpBytes(good);

    // Every header bit, exhaustively: magic flips must be rejected;
    // count flips must be rejected when they promise more records
    // than the file holds, and deliver exactly the (smaller) promised
    // count otherwise. Never a crash either way.
    int rejected = 0;
    for (std::size_t byte = 0; byte < tracefmt::headerBytes; ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            auto mut = bytes;
            mut[byte] ^= (1u << bit);
            writeBytes(bad, mut);

            std::uint64_t records = 0;
            std::string error;
            const bool ok = tryScanTraceFile(
                bad, [&](const CommittedBranch &) { ++records; },
                error);
            if (byte < 8) {
                EXPECT_FALSE(ok) << "magic byte " << byte;
                ++rejected;
                continue;
            }
            // Count bytes: a cleared bit shrinks the promise (still
            // readable), a set bit inflates it past the file size.
            const bool grew = (bytes[byte] & (1u << bit)) == 0;
            if (grew) {
                EXPECT_FALSE(ok)
                    << "count byte " << byte << " bit " << bit;
                EXPECT_NE(error.find("truncated"), std::string::npos);
                ++rejected;
            } else {
                EXPECT_TRUE(ok) << error;
                EXPECT_LT(records, trace.size());
            }
        }
    }
    EXPECT_GT(rejected, 64);

    // Random body flips: structurally valid, every promised record
    // still delivered, no crash under the sanitizers.
    for (int iter = 0; iter < 200; ++iter) {
        auto mut = bytes;
        const std::size_t byte =
            tracefmt::headerBytes +
            std::size_t(rng.nextBelow(
                std::uint64_t(mut.size()) - tracefmt::headerBytes));
        mut[byte] ^= (1u << rng.nextBelow(8));
        writeBytes(bad, mut);

        std::uint64_t records = 0;
        std::string error;
        EXPECT_TRUE(tryScanTraceFile(
            bad, [&](const CommittedBranch &) { ++records; }, error))
            << error;
        EXPECT_EQ(records, trace.size());
    }
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(TraceFuzz, PayloadFlipsStillReconstructOrErrorCleanly)
{
    const std::string good = tmpPath("fuzz_recon_src.pcbptrc");
    const std::string bad = tmpPath("fuzz_recon_mut.pcbptrc");
    Rng rng(555);
    // Small block ids so most flips stay under the reconstruction
    // limit; flips that exceed it are covered by the gate below.
    std::vector<CommittedBranch> trace;
    for (int i = 0; i < 50; ++i) {
        CommittedBranch r;
        r.block = BlockId(i % 7);
        r.pc = 0x400000 + (r.block << 4);
        r.taken = (i % 3) == 0;
        r.numUops = 4;
        trace.push_back(r);
    }
    saveTrace(good, trace);
    const auto bytes = slurpBytes(good);

    int reconstructed = 0;
    for (int iter = 0; iter < 100; ++iter) {
        auto mut = bytes;
        const std::size_t byte =
            tracefmt::headerBytes +
            std::size_t(rng.nextBelow(std::uint64_t(
                mut.size()) - tracefmt::headerBytes));
        mut[byte] ^= (1u << rng.nextBelow(8));
        writeBytes(bad, mut);

        // Gate on the reconstruction limit: beyond it the API is
        // specified to exit(1) (covered separately below).
        BlockId max_block = 0;
        std::string error;
        ASSERT_TRUE(tryScanTraceFile(
            bad,
            [&](const CommittedBranch &r) {
                max_block = std::max(max_block, r.block);
            },
            error));
        if (max_block >= (BlockId(1) << 24))
            continue;
        const Program p = reconstructProgramFromTrace(bad, "mut");
        EXPECT_GT(p.numBlocks(), 0u);
        ++reconstructed;
    }
    EXPECT_GT(reconstructed, 0);

    // A block id past the limit is a clean fatal, not UB.
    auto mut = bytes;
    mut[tracefmt::headerBytes + 3] = 0xff; // high byte of record 0's id
    writeBytes(bad, mut);
    EXPECT_EXIT(reconstructProgramFromTrace(bad, "huge"),
                testing::ExitedWithCode(1), "reconstruction limit");
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

// ----------------------------------------------------- random garbage

TEST(TraceFuzz, RandomGarbageFilesAreGracefulErrors)
{
    const std::string path = tmpPath("fuzz_garbage.bin");
    Rng rng(777);
    for (int iter = 0; iter < 60; ++iter) {
        std::vector<unsigned char> bytes(
            std::size_t(rng.nextBelow(200)));
        for (auto &b : bytes)
            b = static_cast<unsigned char>(rng.nextBelow(256));
        // Never accidentally a valid header.
        if (bytes.size() >= 8 &&
            std::memcmp(bytes.data(), tracefmt::magic, 8) == 0) {
            bytes[0] ^= 0xff;
        }
        writeBytes(path, bytes);
        std::string error;
        EXPECT_FALSE(tryScan(path, error)) << "iter " << iter;
        EXPECT_FALSE(error.empty());
    }
    std::remove(path.c_str());
}

// ================================================= PCBPTRC2 (trace2)

/** Scan a v2 file via the non-fatal entry point. */
bool
tryScan2(const std::string &path, std::string &error,
         std::uint64_t *records = nullptr)
{
    std::uint64_t n = 0;
    const bool ok = tryScanTrace2File(
        path, [&](const CommittedBranch &) { ++n; }, error);
    if (records)
        *records = n;
    return ok;
}

/** A valid multi-block v2 file from adversarial random records. */
std::vector<unsigned char>
buildTrace2(const std::string &path, Rng &rng, std::size_t n,
            std::uint32_t records_per_block)
{
    const auto trace = randomTrace(rng, n);
    Trace2Writer w(path, records_per_block);
    for (const auto &r : trace)
        w.append(r);
    w.finish();
    return slurpBytes(path);
}

TEST(Trace2Fuzz, TruncationAtManyBoundariesIsAGracefulError)
{
    const std::string good = tmpPath("fuzz2_trunc_src.pcbptrc2");
    const std::string cut = tmpPath("fuzz2_trunc_cut.pcbptrc2");
    Rng rng(41);
    const auto bytes = buildTrace2(good, rng, 200, 16);

    // Every header byte, then random cuts through blocks and footer,
    // then each of the last footerMinBytes boundaries (index array,
    // count echo, end magic). A truncated file must never parse: the
    // footer lives at the end, so any cut destroys it.
    std::vector<std::size_t> cuts;
    for (std::size_t n = 0; n <= trace2fmt::headerBytes; ++n)
        cuts.push_back(n);
    Rng pick(43);
    for (int i = 0; i < 60; ++i)
        cuts.push_back(std::size_t(
            pick.nextBelow(std::uint64_t(bytes.size()))));
    for (std::size_t n = 1; n <= trace2fmt::footerMinBytes; ++n)
        cuts.push_back(bytes.size() - n);
    for (const std::size_t n : cuts) {
        writeBytes(cut, {bytes.begin(), bytes.begin() + long(n)});
        std::string error;
        EXPECT_FALSE(tryScan2(cut, error)) << "cut at " << n;
        EXPECT_FALSE(error.empty()) << "cut at " << n;
        // The generic dispatcher surfaces the same failure.
        std::string generic;
        EXPECT_FALSE(tryScan(cut, generic)) << "cut at " << n;
    }

    // The fatal wrapper exits cleanly (no abort, no crash).
    writeBytes(cut,
               {bytes.begin(), bytes.begin() + long(bytes.size() - 4)});
    EXPECT_EXIT(Trace2Reader::open(cut), testing::ExitedWithCode(1),
                "footer");
    std::remove(good.c_str());
    std::remove(cut.c_str());
}

TEST(Trace2Fuzz, CorruptMagicAndVersionAreRejected)
{
    const std::string path = tmpPath("fuzz2_magic.pcbptrc2");
    Rng rng(47);
    const auto bytes = buildTrace2(path, rng, 30, 8);

    for (std::size_t i = 0; i < 8; ++i) {
        auto mut = bytes;
        mut[i] ^= 0x40;
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error)) << "magic byte " << i;
        EXPECT_NE(error.find("bad magic"), std::string::npos);
        // A corrupt v2 magic also demotes the file out of the v2
        // sniff; the v1 parser then rejects it on its own magic.
        EXPECT_FALSE(isTrace2File(path));
    }

    for (std::uint32_t v : {0u, 2u, 0xffffffffu}) {
        auto mut = bytes;
        for (int b = 0; b < 4; ++b)
            mut[8 + b] = (v >> (8 * b)) & 0xff;
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error)) << "version " << v;
        EXPECT_NE(error.find("version"), std::string::npos);
    }

    // Records-per-block of 0 and of > maxBlockRecords are rejected
    // before any division or allocation uses them.
    for (std::uint32_t rpb : {0u, trace2fmt::maxBlockRecords + 1}) {
        auto mut = bytes;
        for (int b = 0; b < 4; ++b)
            mut[12 + b] = (rpb >> (8 * b)) & 0xff;
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error)) << "rpb " << rpb;
        EXPECT_NE(error.find("records-per-block"), std::string::npos);
    }

    writeBytes(path, [&] {
        auto mut = bytes;
        mut[0] ^= 0x40;
        return mut;
    }());
    EXPECT_EXIT(Trace2Reader::open(path), testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

TEST(Trace2Fuzz, CorruptFooterIndexIsAGracefulError)
{
    const std::string path = tmpPath("fuzz2_footer.pcbptrc2");
    Rng rng(53);
    const auto bytes = buildTrace2(path, rng, 100, 8);
    const std::size_t size = bytes.size();

    // The footer tail is fixed-layout from the end: endMagic(8),
    // count echo(8), then numBlocks u64 offsets. Corrupt each.
    {
        auto mut = bytes;
        mut[size - 1] ^= 0xff; // end magic
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error));
        EXPECT_NE(error.find("end magic"), std::string::npos);
    }
    {
        auto mut = bytes;
        mut[size - 16] ^= 0x01; // count echo
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error));
        EXPECT_NE(error.find("echo"), std::string::npos);
    }
    {
        auto mut = bytes;
        mut[size - 24] = 0xff; // last block offset: out of range
        mut[size - 23] = 0xff;
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error));
        EXPECT_NE(error.find("block index"), std::string::npos);
    }
    {
        auto mut = bytes;
        mut[size - 24] = 40; // last offset == first: not increasing
        for (std::size_t b = 1; b < 8; ++b)
            mut[size - 24 + b] = 0;
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error));
        EXPECT_NE(error.find("block index"), std::string::npos);
    }
    {
        // Index offset pointing into the weeds: rejected on bounds
        // or footer magic, never a wild read.
        for (std::uint64_t off :
             {std::uint64_t(0), std::uint64_t(size - 1),
              std::uint64_t(size) * 2, ~std::uint64_t(0)}) {
            auto mut = bytes;
            for (int b = 0; b < 8; ++b)
                mut[24 + b] = (off >> (8 * b)) & 0xff;
            writeBytes(path, mut);
            std::string error;
            EXPECT_FALSE(tryScan2(path, error)) << "indexOffset " << off;
            EXPECT_FALSE(error.empty());
        }
    }
    {
        // Record count inflated past what the blocks hold.
        auto mut = bytes;
        mut[16 + 3] = 0xff;
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error));
        EXPECT_FALSE(error.empty());
    }
    std::remove(path.c_str());
}

TEST(Trace2Fuzz, MidBlockTornWritesAreDetected)
{
    const std::string path = tmpPath("fuzz2_torn.pcbptrc2");
    Rng rng(59);
    const auto bytes = buildTrace2(path, rng, 120, 16);

    // Block 0's descriptor sits right after the header:
    // payloadBytes u32 at 40, nRecords u32 at 44. A torn or
    // rewritten block shows up as one of these disagreeing with the
    // payload it frames.
    const auto payload0 = [&](std::uint32_t v) {
        auto mut = bytes;
        for (int b = 0; b < 4; ++b)
            mut[40 + b] = (v >> (8 * b)) & 0xff;
        return mut;
    };
    const std::uint32_t declared = std::uint32_t(bytes[40]) |
                                   std::uint32_t(bytes[41]) << 8 |
                                   std::uint32_t(bytes[42]) << 16 |
                                   std::uint32_t(bytes[43]) << 24;
    for (const std::uint32_t v :
         {declared + 1, declared - 1, 0u, 0xffffffffu}) {
        writeBytes(path, payload0(v));
        std::string error;
        EXPECT_FALSE(tryScan2(path, error)) << "payloadBytes " << v;
        EXPECT_FALSE(error.empty());
    }
    {
        auto mut = bytes;
        mut[44] ^= 0x01; // nRecords no longer matches the index
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error));
        EXPECT_NE(error.find("record count"), std::string::npos);
    }
    {
        // Zero out the tail of block 0's payload: either a varint
        // decode error or an exact-consumption mismatch, never a
        // crash and never silently wrong-length output.
        auto mut = bytes;
        for (std::size_t i = 0; i < 6 && 48 + i < mut.size(); ++i)
            mut[40 + 8 + declared - 1 - i] = 0x80;
        writeBytes(path, mut);
        std::string error;
        std::uint64_t records = 0;
        EXPECT_FALSE(tryScan2(path, error, &records));
        EXPECT_FALSE(error.empty());
    }
    std::remove(path.c_str());
}

TEST(Trace2Fuzz, SingleBitFlipsNeverCrashTheParser)
{
    const std::string good = tmpPath("fuzz2_flip_src.pcbptrc2");
    const std::string bad = tmpPath("fuzz2_flip_mut.pcbptrc2");
    Rng rng(61);
    const auto bytes = buildTrace2(good, rng, 150, 32);
    const std::uint64_t count = 150;

    // Anywhere in the file: the parse either fails with a non-empty
    // error or delivers exactly the promised record count. (A flip
    // inside a varint's value bits decodes to different records of
    // the same framing; anything that breaks framing is caught by
    // the exact-consumption check.)
    for (int iter = 0; iter < 400; ++iter) {
        auto mut = bytes;
        const std::size_t byte =
            std::size_t(rng.nextBelow(std::uint64_t(mut.size())));
        mut[byte] ^= (1u << rng.nextBelow(8));
        writeBytes(bad, mut);

        std::string error;
        std::uint64_t records = 0;
        if (tryScan2(bad, error, &records)) {
            EXPECT_EQ(records, count) << "flip at byte " << byte;
        } else {
            EXPECT_FALSE(error.empty()) << "flip at byte " << byte;
        }
    }
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(Trace2Fuzz, RandomGarbageFilesAreGracefulErrors)
{
    const std::string path = tmpPath("fuzz2_garbage.bin");
    Rng rng(67);
    for (int iter = 0; iter < 60; ++iter) {
        std::vector<unsigned char> bytes(
            std::size_t(rng.nextBelow(400)));
        for (auto &b : bytes)
            b = static_cast<unsigned char>(rng.nextBelow(256));
        // Half the corpus wears a genuine v2 magic, so the parse
        // gets past the sniff and into header/footer validation.
        if (iter % 2 == 0 && bytes.size() >= 8)
            std::memcpy(bytes.data(), trace2fmt::magic, 8);
        writeBytes(path, bytes);
        std::string error;
        EXPECT_FALSE(tryScan2(path, error)) << "iter " << iter;
        EXPECT_FALSE(error.empty());
        std::string generic;
        EXPECT_FALSE(tryScan(path, generic)) << "iter " << iter;
    }
    std::remove(path.c_str());
}

TEST(Trace2Fuzz, MissingFileIsAGracefulError)
{
    std::string error;
    EXPECT_FALSE(
        tryScan2(tmpPath("fuzz2_does_not_exist.pcbptrc2"), error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace pcbp
