/**
 * @file
 * Property/fuzz tests for the PCBPTRC1 trace parser.
 *
 * Properties:
 * - write -> read round-trips exactly, for randomized record
 *   payloads across the whole value range (including extremes);
 * - malformed input — truncation at any boundary, corrupted magic,
 *   bit flips anywhere in the file — is a graceful error through the
 *   try* entry points (and a clean exit(1) through the fatal
 *   wrappers), never a crash or out-of-bounds read. The ASan+UBSan
 *   CI job runs this file in the fast set, so any parser overread
 *   trips the sanitizers here.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "workload/trace.hh"

namespace pcbp
{
namespace
{

std::string
tmpPath(const char *stem)
{
    return testing::TempDir() + stem;
}

std::vector<CommittedBranch>
randomTrace(Rng &rng, std::size_t n)
{
    std::vector<CommittedBranch> t;
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        CommittedBranch r;
        // Mix extremes in with ordinary values.
        switch (rng.nextBelow(8)) {
          case 0:
            r.block = 0;
            break;
          case 1:
            r.block = 0xffffffffu;
            break;
          default:
            r.block = BlockId(rng.nextBelow(1u << 20));
        }
        r.pc = rng.next();
        r.taken = rng.nextBool(0.5);
        r.numUops = rng.nextBelow(4) == 0
                        ? 0xffffffffu
                        : std::uint32_t(rng.nextBelow(64));
        t.push_back(r);
    }
    return t;
}

std::vector<unsigned char>
slurpBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path,
           const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

/** Scan via the non-fatal entry point, discarding records. */
bool
tryScan(const std::string &path, std::string &error)
{
    return tryScanTraceFile(
        path, [](const CommittedBranch &) {}, error);
}

// -------------------------------------------------------- round trip

TEST(TraceFuzz, RoundTripRandomTraces)
{
    const std::string path = tmpPath("fuzz_roundtrip.pcbptrc");
    Rng rng(2024);
    for (int iter = 0; iter < 10; ++iter) {
        const auto trace =
            randomTrace(rng, 1 + std::size_t(rng.nextBelow(500)));
        saveTrace(path, trace);

        EXPECT_EQ(traceFileCount(path), trace.size());
        const auto back = loadTrace(path);
        ASSERT_EQ(back.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(back[i].block, trace[i].block);
            EXPECT_EQ(back[i].pc, trace[i].pc);
            EXPECT_EQ(back[i].taken, trace[i].taken);
            EXPECT_EQ(back[i].numUops, trace[i].numUops);
        }
        const TraceSummary file = summarizeTraceFile(path);
        const TraceSummary mem = summarizeTrace(trace);
        EXPECT_EQ(file.branches, mem.branches);
        EXPECT_EQ(file.uops, mem.uops);
        EXPECT_EQ(file.takenBranches, mem.takenBranches);
        EXPECT_EQ(file.staticBranches, mem.staticBranches);
    }
    std::remove(path.c_str());
}

TEST(TraceFuzz, EmptyTraceRoundTrips)
{
    const std::string path = tmpPath("fuzz_empty.pcbptrc");
    saveTrace(path, {});
    EXPECT_EQ(traceFileCount(path), 0u);
    EXPECT_TRUE(loadTrace(path).empty());
    std::remove(path.c_str());
}

// -------------------------------------------------------- truncation

TEST(TraceFuzz, TruncationAtEveryBoundaryIsAGracefulError)
{
    const std::string good = tmpPath("fuzz_trunc_src.pcbptrc");
    const std::string cut = tmpPath("fuzz_trunc_cut.pcbptrc");
    Rng rng(7);
    saveTrace(good, randomTrace(rng, 40));
    const auto bytes = slurpBytes(good);
    ASSERT_EQ(bytes.size(),
              tracefmt::headerBytes + 40 * tracefmt::recordBytes);

    // Headers cut anywhere, and bodies cut mid-record and at every
    // record boundary short of the promised count, must all error.
    std::vector<std::size_t> cuts;
    for (std::size_t n = 0; n < tracefmt::headerBytes; ++n)
        cuts.push_back(n);
    Rng pick(99);
    for (int i = 0; i < 40; ++i)
        cuts.push_back(tracefmt::headerBytes +
                       std::size_t(pick.nextBelow(
                           std::uint64_t(bytes.size()) -
                           tracefmt::headerBytes)));
    for (const std::size_t n : cuts) {
        writeBytes(cut, {bytes.begin(), bytes.begin() + long(n)});
        std::string error;
        EXPECT_FALSE(tryScan(cut, error)) << "cut at " << n;
        EXPECT_FALSE(error.empty()) << "cut at " << n;
    }

    // The fatal wrapper exits cleanly (no abort, no crash).
    writeBytes(cut, {bytes.begin(), bytes.begin() + 20});
    EXPECT_EXIT(loadTrace(cut), testing::ExitedWithCode(1),
                "truncated");
    std::remove(good.c_str());
    std::remove(cut.c_str());
}

TEST(TraceFuzz, MissingFileIsAGracefulError)
{
    std::string error;
    EXPECT_FALSE(tryScan(tmpPath("fuzz_does_not_exist.pcbptrc"), error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// ------------------------------------------------------ corrupt magic

TEST(TraceFuzz, CorruptMagicIsRejectedByteByByte)
{
    const std::string path = tmpPath("fuzz_magic.pcbptrc");
    Rng rng(13);
    const auto trace = randomTrace(rng, 8);
    saveTrace(path, trace);
    const auto bytes = slurpBytes(path);

    for (std::size_t i = 0; i < 8; ++i) {
        auto mut = bytes;
        mut[i] ^= 0x40;
        writeBytes(path, mut);
        std::string error;
        EXPECT_FALSE(tryScan(path, error)) << "magic byte " << i;
        EXPECT_NE(error.find("bad magic"), std::string::npos);
    }

    // Fatal wrapper: clean exit, not a crash.
    EXPECT_EXIT(traceFileCount(path), testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

// ---------------------------------------------------------- bit flips

TEST(TraceFuzz, SingleBitFlipsNeverCrashTheParser)
{
    const std::string good = tmpPath("fuzz_flip_src.pcbptrc");
    const std::string bad = tmpPath("fuzz_flip_mut.pcbptrc");
    Rng rng(31337);
    const auto trace = randomTrace(rng, 64);
    saveTrace(good, trace);
    const auto bytes = slurpBytes(good);

    // Every header bit, exhaustively: magic flips must be rejected;
    // count flips must be rejected when they promise more records
    // than the file holds, and deliver exactly the (smaller) promised
    // count otherwise. Never a crash either way.
    int rejected = 0;
    for (std::size_t byte = 0; byte < tracefmt::headerBytes; ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            auto mut = bytes;
            mut[byte] ^= (1u << bit);
            writeBytes(bad, mut);

            std::uint64_t records = 0;
            std::string error;
            const bool ok = tryScanTraceFile(
                bad, [&](const CommittedBranch &) { ++records; },
                error);
            if (byte < 8) {
                EXPECT_FALSE(ok) << "magic byte " << byte;
                ++rejected;
                continue;
            }
            // Count bytes: a cleared bit shrinks the promise (still
            // readable), a set bit inflates it past the file size.
            const bool grew = (bytes[byte] & (1u << bit)) == 0;
            if (grew) {
                EXPECT_FALSE(ok)
                    << "count byte " << byte << " bit " << bit;
                EXPECT_NE(error.find("truncated"), std::string::npos);
                ++rejected;
            } else {
                EXPECT_TRUE(ok) << error;
                EXPECT_LT(records, trace.size());
            }
        }
    }
    EXPECT_GT(rejected, 64);

    // Random body flips: structurally valid, every promised record
    // still delivered, no crash under the sanitizers.
    for (int iter = 0; iter < 200; ++iter) {
        auto mut = bytes;
        const std::size_t byte =
            tracefmt::headerBytes +
            std::size_t(rng.nextBelow(
                std::uint64_t(mut.size()) - tracefmt::headerBytes));
        mut[byte] ^= (1u << rng.nextBelow(8));
        writeBytes(bad, mut);

        std::uint64_t records = 0;
        std::string error;
        EXPECT_TRUE(tryScanTraceFile(
            bad, [&](const CommittedBranch &) { ++records; }, error))
            << error;
        EXPECT_EQ(records, trace.size());
    }
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(TraceFuzz, PayloadFlipsStillReconstructOrErrorCleanly)
{
    const std::string good = tmpPath("fuzz_recon_src.pcbptrc");
    const std::string bad = tmpPath("fuzz_recon_mut.pcbptrc");
    Rng rng(555);
    // Small block ids so most flips stay under the reconstruction
    // limit; flips that exceed it are covered by the gate below.
    std::vector<CommittedBranch> trace;
    for (int i = 0; i < 50; ++i) {
        CommittedBranch r;
        r.block = BlockId(i % 7);
        r.pc = 0x400000 + (r.block << 4);
        r.taken = (i % 3) == 0;
        r.numUops = 4;
        trace.push_back(r);
    }
    saveTrace(good, trace);
    const auto bytes = slurpBytes(good);

    int reconstructed = 0;
    for (int iter = 0; iter < 100; ++iter) {
        auto mut = bytes;
        const std::size_t byte =
            tracefmt::headerBytes +
            std::size_t(rng.nextBelow(std::uint64_t(
                mut.size()) - tracefmt::headerBytes));
        mut[byte] ^= (1u << rng.nextBelow(8));
        writeBytes(bad, mut);

        // Gate on the reconstruction limit: beyond it the API is
        // specified to exit(1) (covered separately below).
        BlockId max_block = 0;
        std::string error;
        ASSERT_TRUE(tryScanTraceFile(
            bad,
            [&](const CommittedBranch &r) {
                max_block = std::max(max_block, r.block);
            },
            error));
        if (max_block >= (BlockId(1) << 24))
            continue;
        const Program p = reconstructProgramFromTrace(bad, "mut");
        EXPECT_GT(p.numBlocks(), 0u);
        ++reconstructed;
    }
    EXPECT_GT(reconstructed, 0);

    // A block id past the limit is a clean fatal, not UB.
    auto mut = bytes;
    mut[tracefmt::headerBytes + 3] = 0xff; // high byte of record 0's id
    writeBytes(bad, mut);
    EXPECT_EXIT(reconstructProgramFromTrace(bad, "huge"),
                testing::ExitedWithCode(1), "reconstruction limit");
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

// ----------------------------------------------------- random garbage

TEST(TraceFuzz, RandomGarbageFilesAreGracefulErrors)
{
    const std::string path = tmpPath("fuzz_garbage.bin");
    Rng rng(777);
    for (int iter = 0; iter < 60; ++iter) {
        std::vector<unsigned char> bytes(
            std::size_t(rng.nextBelow(200)));
        for (auto &b : bytes)
            b = static_cast<unsigned char>(rng.nextBelow(256));
        // Never accidentally a valid header.
        if (bytes.size() >= 8 &&
            std::memcmp(bytes.data(), tracefmt::magic, 8) == 0) {
            bytes[0] ^= 0xff;
        }
        writeBytes(path, bytes);
        std::string error;
        EXPECT_FALSE(tryScan(path, error)) << "iter " << iter;
        EXPECT_FALSE(error.empty());
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace pcbp
