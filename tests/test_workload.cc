/**
 * @file
 * Unit tests for the workload substrate: behavior models, the CFG
 * program model, the generator, the suite registry, and trace
 * record/replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "workload/behavior.hh"
#include "workload/cfg.hh"
#include "workload/generator.hh"
#include "workload/suites.hh"
#include "workload/trace.hh"

namespace pcbp
{
namespace
{

ArchContext
ctxOf(const HistoryRegister &h, std::uint64_t t = 0)
{
    return ArchContext{h, t};
}

// -------------------------------------------------------------- behaviors

TEST(Behavior, BiasedRate)
{
    BiasedBehavior b(0.8, 42);
    HistoryRegister h;
    int taken = 0;
    for (int i = 0; i < 10000; ++i)
        taken += b.nextOutcome(ctxOf(h)) ? 1 : 0;
    EXPECT_NEAR(taken / 10000.0, 0.8, 0.03);
}

TEST(Behavior, BiasedResetReplays)
{
    BiasedBehavior b(0.5, 7);
    HistoryRegister h;
    std::vector<bool> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(b.nextOutcome(ctxOf(h)));
    b.reset();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(b.nextOutcome(ctxOf(h)), first[i]);
}

TEST(Behavior, LoopPeriod)
{
    LoopBehavior l(4);
    HistoryRegister h;
    // T T T N repeating.
    for (int rep = 0; rep < 3; ++rep) {
        EXPECT_TRUE(l.nextOutcome(ctxOf(h)));
        EXPECT_TRUE(l.nextOutcome(ctxOf(h)));
        EXPECT_TRUE(l.nextOutcome(ctxOf(h)));
        EXPECT_FALSE(l.nextOutcome(ctxOf(h)));
    }
}

TEST(Behavior, PatternCycles)
{
    PatternBehavior p({true, false, false}, 0.0, 1);
    HistoryRegister h;
    for (int rep = 0; rep < 4; ++rep) {
        EXPECT_TRUE(p.nextOutcome(ctxOf(h)));
        EXPECT_FALSE(p.nextOutcome(ctxOf(h)));
        EXPECT_FALSE(p.nextOutcome(ctxOf(h)));
    }
}

TEST(Behavior, GlobalEchoCopiesLaggedBit)
{
    GlobalEchoBehavior e(3, false, 0.0, 1);
    HistoryRegister h;
    h.shiftIn(true);  // lag 3 after three more shifts
    h.shiftIn(false);
    h.shiftIn(false);
    h.shiftIn(false);
    EXPECT_TRUE(e.nextOutcome(ctxOf(h)));
}

TEST(Behavior, GlobalEchoInvert)
{
    GlobalEchoBehavior e(0, true, 0.0, 1);
    HistoryRegister h;
    h.shiftIn(true);
    EXPECT_FALSE(e.nextOutcome(ctxOf(h)));
}

TEST(Behavior, GlobalXorOfLags)
{
    GlobalXorBehavior x(0, 2, false, 0.0, 1);
    HistoryRegister h;
    h.shiftIn(true);  // bit 2 after two more shifts
    h.shiftIn(false); // bit 1
    h.shiftIn(true);  // bit 0
    // bits: [0]=T [1]=N [2]=T
    EXPECT_FALSE(x.nextOutcome(ctxOf(h))) << "T xor T = N";
    h.shiftIn(true);
    // bits: [0]=T [1]=T [2]=N
    EXPECT_TRUE(x.nextOutcome(ctxOf(h))) << "T xor N = T";
    h.shiftIn(false);
    // bits: [0]=N [1]=T [2]=T
    EXPECT_TRUE(x.nextOutcome(ctxOf(h))) << "N xor T = T";
}

TEST(Behavior, GlobalParityWidth)
{
    GlobalParityBehavior p(0, 3, false, 0.0, 1);
    HistoryRegister h;
    h.shiftIn(true);
    h.shiftIn(true);
    h.shiftIn(false);
    // bits 0..2 = {0,1,1}: parity odd? two ones -> even -> false.
    EXPECT_FALSE(p.nextOutcome(ctxOf(h)));
    h.shiftIn(true); // bits {1,0,1}: two ones -> even -> false
    EXPECT_FALSE(p.nextOutcome(ctxOf(h)));
    h.shiftIn(false); // bits {0,1,0}: one -> odd -> true
    EXPECT_TRUE(p.nextOutcome(ctxOf(h)));
}

TEST(Behavior, LocalParityDeterministicAndBalanced)
{
    LocalParityBehavior l(5, 0.0, 3);
    HistoryRegister h;
    int taken = 0;
    for (int i = 0; i < 2000; ++i)
        taken += l.nextOutcome(ctxOf(h)) ? 1 : 0;
    // Self-referential parity oscillates; roughly balanced.
    EXPECT_GT(taken, 100) << "both outcomes must occur";
    EXPECT_LT(taken, 1900);
}

TEST(Behavior, PhaseClockSharedAcrossInstances)
{
    PhaseClockSpec spec;
    spec.seed = 99;
    spec.lo = 100;
    spec.hi = 200;
    PhaseClock a(spec), b(spec);
    for (std::uint64_t t = 0; t < 5000; t += 7)
        EXPECT_EQ(a.phaseAt(t), b.phaseAt(t));
}

TEST(Behavior, PhaseClockFlips)
{
    PhaseClockSpec spec;
    spec.seed = 5;
    spec.lo = 50;
    spec.hi = 80;
    PhaseClock c(spec);
    int flips = 0;
    bool last = c.phaseAt(0);
    for (std::uint64_t t = 1; t < 2000; ++t) {
        const bool ph = c.phaseAt(t);
        flips += ph != last;
        last = ph;
    }
    EXPECT_GE(flips, 20);
    EXPECT_LE(flips, 45);
}

TEST(Behavior, PhaseRevealTracksClock)
{
    PhaseClockSpec spec;
    spec.seed = 11;
    spec.lo = 300;
    spec.hi = 400;
    PhaseRevealBehavior r(spec, 1.0, 1);
    PhaseClock c(spec);
    HistoryRegister h;
    for (std::uint64_t t = 0; t < 2000; t += 3)
        EXPECT_EQ(r.nextOutcome(ctxOf(h, t)), c.phaseAt(t));
}

TEST(Behavior, PhaseXorCombinesClockAndPattern)
{
    PhaseClockSpec spec;
    spec.seed = 31;
    spec.lo = 1000;
    spec.hi = 1000; // phase 0 for t < 1000, phase 1 after
    PhaseXorBehavior px(spec, {true, false}, 0.0, 1);
    HistoryRegister h;
    // Phase 0: outcome = pattern directly (T, N, T, N...).
    EXPECT_TRUE(px.nextOutcome(ctxOf(h, 0)));
    EXPECT_FALSE(px.nextOutcome(ctxOf(h, 1)));
    // Phase 1: outcome = pattern inverted.
    EXPECT_FALSE(px.nextOutcome(ctxOf(h, 1500)));
    EXPECT_TRUE(px.nextOutcome(ctxOf(h, 1501)));
}

TEST(Behavior, PhaseXorResetRestartsPatternAndClock)
{
    PhaseClockSpec spec;
    spec.seed = 32;
    spec.lo = 50;
    spec.hi = 120;
    PhaseXorBehavior px(spec, {true, true, false}, 0.0, 2);
    HistoryRegister h;
    std::vector<bool> first;
    for (std::uint64_t t = 0; t < 300; ++t)
        first.push_back(px.nextOutcome(ctxOf(h, t)));
    px.reset();
    for (std::uint64_t t = 0; t < 300; ++t)
        EXPECT_EQ(px.nextOutcome(ctxOf(h, t)), first[t]) << t;
}

TEST(Behavior, PhasedLoopSwitchesTripCount)
{
    PhaseClockSpec spec;
    spec.seed = 21;
    spec.lo = 1000;
    spec.hi = 1000;
    PhasedLoopBehavior pl(spec, 2, 5);
    HistoryRegister h;
    // Phase 0 at t=0: period 2 -> T N.
    EXPECT_TRUE(pl.nextOutcome(ctxOf(h, 0)));
    EXPECT_FALSE(pl.nextOutcome(ctxOf(h, 1)));
    // Phase 1 from t=1000: period 5 -> T T T T N.
    int taken = 0;
    for (int i = 0; i < 5; ++i)
        taken += pl.nextOutcome(ctxOf(h, 1500 + i)) ? 1 : 0;
    EXPECT_EQ(taken, 4);
}

// -------------------------------------------------------------------- CFG

TEST(Program, ValidateCatchesBadTargets)
{
    Program p("bad");
    BasicBlock b;
    b.branchPc = 0x1000;
    b.numUops = 4;
    b.takenTarget = 7; // out of range
    b.fallthroughTarget = 0;
    b.behavior = std::make_unique<BiasedBehavior>(0.5, 1);
    p.addBlock(std::move(b));
    EXPECT_DEATH(p.validate(), "target out of range");
}

TEST(Program, WalkFollowsOutcomes)
{
    Program p("walk");
    for (int i = 0; i < 2; ++i) {
        BasicBlock b;
        b.branchPc = 0x1000 + i * 16;
        b.numUops = 5;
        b.takenTarget = static_cast<BlockId>(1 - i);
        b.fallthroughTarget = static_cast<BlockId>(1 - i);
        b.behavior = std::make_unique<BiasedBehavior>(1.0, 1);
        p.addBlock(std::move(b));
    }
    auto trace = walkProgram(p, 6);
    ASSERT_EQ(trace.size(), 6u);
    // Alternates 0 -> 1 -> 0 ...
    EXPECT_EQ(trace[0].block, 0u);
    EXPECT_EQ(trace[1].block, 1u);
    EXPECT_EQ(trace[2].block, 0u);
    for (const auto &r : trace) {
        EXPECT_TRUE(r.taken);
        EXPECT_EQ(r.numUops, 5u);
    }
}

TEST(Program, WalkIsRepeatable)
{
    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    auto t1 = walkProgram(p, 5000);
    auto t2 = walkProgram(p, 5000); // resetWalk inside
    ASSERT_EQ(t1.size(), t2.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].block, t2[i].block);
        EXPECT_EQ(t1[i].taken, t2[i].taken);
    }
}

// -------------------------------------------------------------- generator

TEST(Generator, DeterministicForSeed)
{
    WorkloadRecipe r;
    r.targetBlocks = 200;
    r.seed = 77;
    Program a = generateProgram(r);
    Program b = generateProgram(r);
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    for (BlockId i = 0; i < a.numBlocks(); ++i) {
        EXPECT_EQ(a.block(i).branchPc, b.block(i).branchPc);
        EXPECT_EQ(a.block(i).takenTarget, b.block(i).takenTarget);
        EXPECT_EQ(a.block(i).behavior->describe(),
                  b.block(i).behavior->describe());
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    WorkloadRecipe r;
    r.targetBlocks = 200;
    r.seed = 1;
    Program a = generateProgram(r);
    r.seed = 2;
    Program b = generateProgram(r);
    bool differs = a.numBlocks() != b.numBlocks();
    for (BlockId i = 0; !differs && i < a.numBlocks(); ++i)
        differs = a.block(i).behavior->describe() !=
                  b.block(i).behavior->describe();
    EXPECT_TRUE(differs);
}

TEST(Generator, ContainsRequestedMotifs)
{
    WorkloadRecipe r;
    r.targetBlocks = 400;
    r.numChains = 5;
    r.numPhaseChains = 5;
    Program p = generateProgram(r);
    int xors = 0, echoes = 0, reveals = 0;
    for (BlockId i = 0; i < p.numBlocks(); ++i) {
        const std::string d = p.block(i).behavior->describe();
        xors += d.rfind("global-xor", 0) == 0;
        echoes += d.rfind("global-echo", 0) == 0;
        reveals += d.rfind("phase-reveal", 0) == 0;
    }
    EXPECT_EQ(xors, 5) << "one XOR consumer per echo chain";
    EXPECT_EQ(echoes, 10) << "two relays per echo chain";
    EXPECT_EQ(reveals, 10) << "consumer + inner revealer per phase chain";
}

TEST(Generator, UopsWithinRange)
{
    WorkloadRecipe r;
    r.targetBlocks = 150;
    r.minUops = 5;
    r.maxUops = 9;
    Program p = generateProgram(r);
    for (BlockId i = 0; i < p.numBlocks(); ++i) {
        EXPECT_GE(p.block(i).numUops, 5u);
        EXPECT_LE(p.block(i).numUops, 9u);
    }
}

TEST(Generator, WalkTouchesManyBlocks)
{
    WorkloadRecipe r;
    r.targetBlocks = 300;
    Program p = generateProgram(r);
    auto trace = walkProgram(p, 30000);
    std::set<BlockId> seen;
    for (const auto &t : trace)
        seen.insert(t.block);
    EXPECT_GT(seen.size(), p.numBlocks() / 2)
        << "most of the program should be reachable";
}

// ----------------------------------------------------------------- suites

TEST(Suites, RegistryComplete)
{
    EXPECT_GE(allWorkloads().size(), 21u);
    EXPECT_EQ(fig5Set().size(), 6u);
    EXPECT_EQ(avgSet().size(), 14u);
    for (const auto &s : allSuites())
        EXPECT_EQ(suiteWorkloads(s).size(), 2u) << s;
}

TEST(Suites, NamesResolve)
{
    for (const char *n : {"unzip", "premiere", "msvc7", "flash",
                          "facerec", "tpcc", "gcc"})
        EXPECT_EQ(workloadByName(n).name, n);
}

TEST(Suites, ProgramsBuildAndValidate)
{
    for (const auto &w : allWorkloads()) {
        Program p = buildProgram(w);
        EXPECT_GT(p.numBlocks(), 50u) << w.name;
    }
}

TEST(Suites, UopsPerBranchNearThirteen)
{
    // The paper: IA32 conditional branches every ~13 uops on
    // average. Our default recipes target the same order.
    double total_uops = 0, total_branches = 0;
    for (const Workload *w : avgSet()) {
        Program p = buildProgram(*w);
        auto trace = walkProgram(p, 20000);
        for (const auto &t : trace) {
            total_uops += t.numUops;
            ++total_branches;
        }
    }
    const double upb = total_uops / total_branches;
    EXPECT_GT(upb, 8.0);
    EXPECT_LT(upb, 20.0);
}

// ------------------------------------------------------------------ trace

TEST(Trace, SaveLoadRoundTrip)
{
    const Workload &w = workloadByName("fp.swim");
    Program p = buildProgram(w);
    auto trace = walkProgram(p, 3000);

    const std::string path = "/tmp/pcbp_trace_test.bin";
    saveTrace(path, trace);
    auto loaded = loadTrace(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].block, trace[i].block);
        EXPECT_EQ(loaded[i].pc, trace[i].pc);
        EXPECT_EQ(loaded[i].taken, trace[i].taken);
        EXPECT_EQ(loaded[i].numUops, trace[i].numUops);
    }
}

TEST(Trace, Summary)
{
    std::vector<CommittedBranch> t = {
        {0, 0x1000, true, 5},
        {1, 0x1010, false, 7},
        {0, 0x1000, true, 5},
    };
    const TraceSummary s = summarizeTrace(t);
    EXPECT_EQ(s.branches, 3u);
    EXPECT_EQ(s.uops, 17u);
    EXPECT_EQ(s.takenBranches, 2u);
    EXPECT_EQ(s.staticBranches, 2u);
    EXPECT_NEAR(s.takenRate(), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(s.uopsPerBranch(), 17.0 / 3.0, 1e-9);
}

} // namespace
} // namespace pcbp
