#!/usr/bin/env python3
"""Markdown link/anchor and source-path checker (CI docs job).

Scans the repository's Markdown files (top level and docs/;
tests/golden/ is intentionally excluded — generated artifacts may
reference paths relative to their output directory) and fails on:

  * relative Markdown links to files that do not exist;
  * intra-repo anchor links (#heading) that match no heading in the
    target file (GitHub-style slugs; the same rule as slugify() in
    src/report/repro.cc — keep them in sync);
  * backticked or bare references to repository paths
    (src/..., bench/..., tools/..., tests/..., examples/..., docs/...)
    that do not exist (glob patterns are expanded; a pattern matching
    nothing fails).

Usage: python3 tools/check_docs.py [repo-root]
Exits non-zero with one line per problem.
"""

import glob
import os
import re
import sys

PATH_PREFIXES = ("src/", "bench/", "tools/", "tests/", "examples/",
                 "docs/")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
# Path-like tokens: a known prefix followed by path characters.
PATH_RE = re.compile(
    r"(?<![\w/.])((?:src|bench|tools|tests|examples|docs)/"
    r"[A-Za-z0-9_./*-]*)")


def github_slug(heading):
    """GitHub-style anchor; mirror of slugify() in src/report/repro.cc."""
    out = []
    for ch in heading:
        if ch.isalnum():
            out.append(ch.lower())
        elif ch == " ":
            out.append("-")
        elif ch in "-_":
            out.append(ch)
    return "".join(out)


def md_files(root):
    for entry in sorted(os.listdir(root)):
        if entry.endswith(".md"):
            yield os.path.join(root, entry)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for dirpath, _dirnames, filenames in os.walk(docs):
            for name in sorted(filenames):
                if name.endswith(".md"):
                    yield os.path.join(dirpath, name)


def headings_of(path):
    slugs = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = HEADING_RE.match(line.rstrip())
            if not m:
                continue
            # Strip inline code/emphasis markers before slugging,
            # as GitHub does.
            text = re.sub(r"[`*]", "", m.group(1)).strip()
            slug = github_slug(text)
            # Repeated headings get -1, -2, ... suffixes.
            n = slugs.get(slug, -1) + 1
            slugs[slug] = n
            if n:
                slugs[f"{slug}-{n}"] = 0
    return set(slugs)


def check_file(root, path, problems):
    rel = os.path.relpath(path, root)
    text = open(path, encoding="utf-8").read()
    base = os.path.dirname(path)

    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        if target:
            dest = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(dest):
                problems.append(f"{rel}: dead link: {m.group(1)}")
                continue
        else:
            dest = path
        if anchor and dest.endswith(".md"):
            if anchor not in headings_of(dest):
                problems.append(f"{rel}: dead anchor: #{anchor}")

    seen = set()
    for m in PATH_RE.finditer(text):
        token = m.group(1).rstrip(".,:;)")
        if token in seen:
            continue
        seen.add(token)
        if not token.startswith(PATH_PREFIXES):
            continue
        if any(tok in token for tok in "*?["):
            if not glob.glob(os.path.join(root, token)):
                problems.append(
                    f"{rel}: path pattern matches nothing: {token}")
            continue
        full = os.path.join(root, token)
        if os.path.exists(full):
            continue
        # Extensionless stems are fine when something carries the
        # stem: `bench/h2p_report` (the built binary) names
        # bench/h2p_report.cc, and `src/sim/spec_core.{hh,cc}`
        # tokenizes to the stem `src/sim/spec_core`.
        if not os.path.splitext(token)[1] and glob.glob(full + ".*"):
            continue
        problems.append(f"{rel}: dead path reference: {token}")


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    problems = []
    count = 0
    for path in md_files(root):
        count += 1
        check_file(root, path, problems)
    for p in problems:
        print(p)
    print(f"check_docs: {count} files, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
