#!/usr/bin/env python3
"""Markdown link/anchor and source-path checker (CI docs job).

Scans the repository's Markdown files (top level and docs/;
tests/golden/ is intentionally excluded — generated artifacts may
reference paths relative to their output directory) and fails on:

  * relative Markdown links to files that do not exist;
  * intra-repo anchor links (#heading) that match no heading in the
    target file (GitHub-style slugs; the same rule as slugify() in
    src/report/repro.cc — keep them in sync);
  * backticked or bare references to repository paths
    (src/..., bench/..., tools/..., tests/..., examples/..., docs/...)
    that do not exist (glob patterns are expanded; a pattern matching
    nothing fails);
  * commands in fenced shell blocks (```sh / ```bash) that name
    binaries the build does not produce: `build/<name>` and `./<name>`
    must match a source stem in bench/, examples/, or tools/ (every
    file there builds to an executable of its stem), relative paths
    must exist, and anything else must be a known external command
    (cmake, ctest, python3, ...). This is what keeps quickstart
    commands runnable after a binary is renamed or migrated.

Usage: python3 tools/check_docs.py [repo-root]
Exits non-zero with one line per problem.
"""

import glob
import os
import re
import sys

PATH_PREFIXES = ("src/", "bench/", "tools/", "tests/", "examples/",
                 "docs/")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
# Path-like tokens: a known prefix followed by path characters.
PATH_RE = re.compile(
    r"(?<![\w/.])((?:src|bench|tools|tests|examples|docs)/"
    r"[A-Za-z0-9_./*-]*)")


# Any ``` line toggles fence state; the info string may carry extra
# words (```sh title=x), so capture everything and take the first
# token as the language.
FENCE_RE = re.compile(r"^```(.*)$")
SHELL_LANGS = {"sh", "bash", "shell", "console"}
# External commands docs may legitimately invoke.
KNOWN_COMMANDS = {
    "cmake", "ctest", "python3", "python", "cd", "ls", "cat", "head",
    "tail", "diff", "cmp", "printf", "echo", "exit", "true", "false",
    "test", "export", "git", "mkdir", "rm", "cp", "mv", "grep", "sed",
    "sort", "tee",
}
ENV_ASSIGN_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")


def built_binary_stems(root):
    """Executable names the build produces: one per source stem in
    bench/, examples/, tools/, and tests/ (mirrors the CMakeLists
    globs; tests build when GTest is available)."""
    stems = set()
    for d in ("bench", "examples", "tools", "tests"):
        for path in glob.glob(os.path.join(root, d, "*.cc")):
            stems.add(os.path.splitext(os.path.basename(path))[0])
    return stems


def iter_shell_commands(text):
    """Yield every command string inside ```sh/```bash fences,
    continuation lines joined, comments stripped, &&/||/;/| split."""
    lang = None
    pending = ""
    for line in text.splitlines():
        fence = FENCE_RE.match(line.strip())
        if fence:
            if lang is None:  # opening fence: first info-string token
                info = fence.group(1).strip().split()
                lang = info[0].lower() if info else ""
            else:  # closing fence
                lang = None
            pending = ""
            continue
        if lang not in SHELL_LANGS:
            continue
        line = pending + line
        pending = ""
        if line.rstrip().endswith("\\"):
            pending = line.rstrip()[:-1] + " "
            continue
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        for part in re.split(r"&&|\|\||;|\|", line):
            if part.strip():
                yield part.strip()


def check_shell_commands(root, rel, text, problems):
    stems = built_binary_stems(root)
    for command in iter_shell_commands(text):
        tokens = command.split()
        while tokens and ENV_ASSIGN_RE.match(tokens[0]):
            tokens.pop(0)
        if not tokens:
            continue
        cmd = tokens[0]
        if cmd in KNOWN_COMMANDS:
            continue
        name = None
        if cmd.startswith("build/"):
            name = cmd[len("build/"):]
        elif cmd.startswith("./"):
            name = cmd[len("./"):]
        if name is not None:
            if name not in stems:
                problems.append(
                    f"{rel}: shell block names unbuilt binary: {cmd}")
        elif "/" in cmd:
            if not os.path.exists(os.path.join(root, cmd)):
                problems.append(
                    f"{rel}: shell block names missing path: {cmd}")
        else:
            problems.append(
                f"{rel}: shell block uses unknown command: {cmd}")


def github_slug(heading):
    """GitHub-style anchor; mirror of slugify() in src/report/repro.cc."""
    out = []
    for ch in heading:
        if ch.isalnum():
            out.append(ch.lower())
        elif ch == " ":
            out.append("-")
        elif ch in "-_":
            out.append(ch)
    return "".join(out)


def md_files(root):
    for entry in sorted(os.listdir(root)):
        if entry.endswith(".md"):
            yield os.path.join(root, entry)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for dirpath, _dirnames, filenames in os.walk(docs):
            for name in sorted(filenames):
                if name.endswith(".md"):
                    yield os.path.join(dirpath, name)


def headings_of(path):
    slugs = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = HEADING_RE.match(line.rstrip())
            if not m:
                continue
            # Strip inline code/emphasis markers before slugging,
            # as GitHub does.
            text = re.sub(r"[`*]", "", m.group(1)).strip()
            slug = github_slug(text)
            # Repeated headings get -1, -2, ... suffixes.
            n = slugs.get(slug, -1) + 1
            slugs[slug] = n
            if n:
                slugs[f"{slug}-{n}"] = 0
    return set(slugs)


def check_file(root, path, problems):
    rel = os.path.relpath(path, root)
    text = open(path, encoding="utf-8").read()
    base = os.path.dirname(path)

    check_shell_commands(root, rel, text, problems)

    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        if target:
            dest = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(dest):
                problems.append(f"{rel}: dead link: {m.group(1)}")
                continue
        else:
            dest = path
        if anchor and dest.endswith(".md"):
            if anchor not in headings_of(dest):
                problems.append(f"{rel}: dead anchor: #{anchor}")

    seen = set()
    for m in PATH_RE.finditer(text):
        token = m.group(1).rstrip(".,:;)")
        if token in seen:
            continue
        seen.add(token)
        if not token.startswith(PATH_PREFIXES):
            continue
        if any(tok in token for tok in "*?["):
            if not glob.glob(os.path.join(root, token)):
                problems.append(
                    f"{rel}: path pattern matches nothing: {token}")
            continue
        full = os.path.join(root, token)
        if os.path.exists(full):
            continue
        # Extensionless stems are fine when something carries the
        # stem: `bench/h2p_report` (the built binary) names
        # bench/h2p_report.cc, and `src/sim/spec_core.{hh,cc}`
        # tokenizes to the stem `src/sim/spec_core`.
        if not os.path.splitext(token)[1] and glob.glob(full + ".*"):
            continue
        problems.append(f"{rel}: dead path reference: {token}")


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    problems = []
    count = 0
    for path in md_files(root):
        count += 1
        check_file(root, path, problems)
    for p in problems:
        print(p)
    print(f"check_docs: {count} files, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
