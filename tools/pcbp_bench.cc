/**
 * @file
 * pcbp_bench — the performance benchmark CLI.
 *
 *   pcbp_bench list
 *       Every registered benchmark: name, group, unit, description.
 *
 *   pcbp_bench run [--quick] [--filter SUBSTRS] [--name LABEL]
 *                  [--out DIR] [--repeats N] [--workload NAME]
 *                  [--stats-out FILE] [--trace-out FILE]
 *       Measure the selected benchmarks (all when no --filter;
 *       comma-separated substrings match any, e.g.
 *       "engine.,timing.") and
 *       write `BENCH_<LABEL>.json` (deterministic pcbp-bench-1
 *       schema) plus `BENCH_<LABEL>.md` (the Markdown summary, also
 *       printed to stdout) into DIR (default "."). --workload
 *       retargets the engine/timing benches at any registry workload
 *       or trace:<path>. PCBP_BENCH_SCALE scales the work.
 *       --trace-out writes a Perfetto-loadable span trace of every
 *       warmup/repetition phase; --stats-out dumps host-side run
 *       metadata as a pcbp-stats-1 registry. Neither touches the
 *       BENCH_*.json bytes or the timed windows.
 *
 *   pcbp_bench compare --baseline FILE CURRENT_FILE
 *                      [--threshold FRACTION] [--warn-only] [--strict]
 *                      [--json-out FILE]
 *       Join two artifacts by benchmark name, print the comparison
 *       table, and exit 1 when any benchmark's throughput dropped
 *       more than the threshold (default 0.10 = 10%) below the
 *       baseline — unless --warn-only (shared-runner CI), which
 *       always exits 0. Benchmarks present on only one side are
 *       reported (table verdicts plus an stderr summary) but don't
 *       gate by default; --strict also fails on such mismatched
 *       benchmark sets, for CI jobs that pin the registry.
 *       --json-out writes the comparison as a pcbp-bench-compare-1
 *       document — every delta including the one-sided benchmarks
 *       (flagged `missing_baseline` / `missing_current`), so the CI
 *       artifact is self-describing without scraping stderr. See
 *       docs/PERFORMANCE.md for methodology.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "obs/span_trace.hh"
#include "obs/stat_registry.hh"
#include "perf/bench_report.hh"

using namespace pcbp;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " COMMAND [options]\n"
        << "  list\n"
        << "  run     [--quick] [--filter SUBSTRS] [--name LABEL]"
           " [--out DIR]\n"
        << "          [--repeats N] [--workload NAME]"
           " [--stats-out FILE]\n"
        << "          [--trace-out FILE]\n"
        << "  compare --baseline FILE CURRENT_FILE"
           " [--threshold FRACTION] [--warn-only]\n"
           "          [--strict] [--json-out FILE]\n";
    std::exit(2);
}

struct Args
{
    std::string filter;
    std::string name = "run";
    std::string out = ".";
    std::string workload;
    std::string baseline;
    std::string current;
    std::string statsOut;
    std::string traceOut;
    std::string jsonOut;
    double threshold = 0.10;
    unsigned repeats = 0;
    bool quick = false;
    bool warnOnly = false;
    bool strict = false;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--filter")
            a.filter = next();
        else if (arg == "--name")
            a.name = next();
        else if (arg == "--out")
            a.out = next();
        else if (arg == "--workload")
            a.workload = next();
        else if (arg == "--baseline")
            a.baseline = next();
        else if (arg == "--stats-out")
            a.statsOut = next();
        else if (arg == "--trace-out")
            a.traceOut = next();
        else if (arg == "--json-out")
            a.jsonOut = next();
        else if (arg == "--threshold")
            a.threshold = std::atof(next().c_str());
        else if (arg == "--repeats")
            a.repeats = static_cast<unsigned>(std::atoi(next().c_str()));
        else if (arg == "--quick")
            a.quick = true;
        else if (arg == "--warn-only")
            a.warnOnly = true;
        else if (arg == "--strict")
            a.strict = true;
        else if (!arg.empty() && arg[0] != '-' && a.current.empty())
            a.current = arg;
        else
            usage(argv[0]);
    }
    return a;
}

int
cmdList()
{
    for (const BenchDef &d : allBenches()) {
        std::printf("%-26s %-9s %-9s %s\n", d.name.c_str(),
                    d.group.c_str(), (d.unit + "/s").c_str(),
                    d.description.c_str());
    }
    return 0;
}

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        pcbp_fatal("cannot write '", path, "'");
    out << content;
    if (!out.flush())
        pcbp_fatal("short write to '", path, "'");
}

int
cmdRun(const Args &a)
{
    BenchContext ctx;
    ctx.quick = a.quick;
    ctx.workload = a.workload;
    ctx.repeats = a.repeats;

    SpanTracer tracer;
    if (!a.traceOut.empty())
        ctx.tracer = &tracer;

    const std::vector<const BenchDef *> defs = benchesMatching(a.filter);
    if (defs.empty())
        pcbp_fatal("no benchmark matches filter '", a.filter, "'");

    const BenchRun run =
        BenchRun::fromResults(a.name, ctx, runBenches(defs, ctx));
    const std::string stem = a.out + "/BENCH_" + a.name;
    const ReportTable table = benchRunTable(run);
    writeFileOrDie(stem + ".json", benchRunToJson(run));
    writeFileOrDie(stem + ".md", table.toMarkdown());
    std::cout << table.toMarkdown();
    std::fprintf(stderr, "wrote %s.json and %s.md\n", stem.c_str(),
                 stem.c_str());

    if (!a.traceOut.empty())
        tracer.writeFile(a.traceOut);
    if (!a.statsOut.empty()) {
        // Host-side run metadata (timings are wall clock, so they
        // live in the host section by definition).
        StatRegistry reg;
        reg.setHost("bench.benches", run.results.size());
        for (const BenchResult &r : run.results) {
            const std::string p = "bench." + r.name;
            reg.setHost(p + ".repeats", r.m.repeats);
            reg.setHost(p + ".items_per_rep", r.m.itemsPerRep);
            reg.setHost(p + ".ns_median",
                        static_cast<std::uint64_t>(r.m.nsMedian));
            reg.setHost(p + ".ns_max",
                        static_cast<std::uint64_t>(r.m.nsMax));
        }
        reg.writeFiles(a.statsOut);
    }
    return 0;
}

int
cmdCompare(const Args &a)
{
    if (a.baseline.empty() || a.current.empty())
        pcbp_fatal("compare needs --baseline FILE and a current file");

    const BenchRun base = loadBenchRun(a.baseline);
    const BenchRun cur = loadBenchRun(a.current);
    const BenchComparison cmp =
        compareBenchRuns(base, cur, a.threshold);
    std::cout << benchComparisonTable(cmp, a.threshold).toMarkdown();

    // The JSON summary carries every delta — the one-sided
    // benchmarks included, with their missing_* flags — so a CI
    // artifact of the comparison needs no stderr scraping.
    if (!a.jsonOut.empty()) {
        writeFileOrDie(a.jsonOut,
                       benchComparisonToJson(cmp, a.threshold));
    }

    // Benchmarks on only one side never compare silently: name them
    // on stderr, and under --strict treat the mismatch as a failure
    // (a renamed or dropped benchmark would otherwise stop gating).
    std::size_t mismatched = 0;
    for (const BenchDelta &d : cmp.deltas) {
        if (!d.missingBaseline && !d.missingCurrent)
            continue;
        ++mismatched;
        std::fprintf(stderr, "benchmark sets differ: '%s' %s\n",
                     d.name.c_str(),
                     d.missingBaseline ? "has no baseline"
                                       : "is missing from current");
    }

    int rc = 0;
    if (cmp.regressed) {
        std::fprintf(stderr, "regression beyond threshold%s\n",
                     a.warnOnly ? " (warn-only)" : "");
        rc = 1;
    }
    if (a.strict && mismatched) {
        std::fprintf(stderr,
                     "strict: %zu benchmark(s) present on only one "
                     "side%s\n",
                     mismatched, a.warnOnly ? " (warn-only)" : "");
        rc = 1;
    }
    return a.warnOnly ? 0 : rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    const std::string cmd = argv[1];
    const Args a = parseArgs(argc, argv);
    // Only compare takes a positional (the current artifact); a bare
    // argument elsewhere is a mistake (`run engine.gshare` instead of
    // `run --filter engine.gshare`) and must not silently run
    // everything.
    if (cmd != "compare" && !a.current.empty())
        usage(argv[0]);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(a);
    if (cmd == "compare")
        return cmdCompare(a);
    usage(argv[0]);
}
