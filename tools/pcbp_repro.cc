/**
 * @file
 * pcbp_repro — the reproduction/report CLI: one command from a paper
 * figure to a rendered artifact.
 *
 *   pcbp_repro list
 *       The figure registry: id, paper reference, title, grid size.
 *
 *   pcbp_repro run [--figures LIST|all] [--out DIR] [--jobs N]
 *                  [--quick] [--branches N] [--workloads LIST]
 *                  [--suite LIST] [--max-cells N] [--quiet]
 *                  [--progress] [--stats-out FILE] [--trace-out FILE]
 *                  [--no-fork] [--batch]
 *       Run the selected figures' sweep grids against per-figure
 *       stores under DIR/store/ and render DIR/REPRO.md plus
 *       per-figure CSV/JSON artifacts. Cells already in a store are
 *       skipped, so an interrupted run resumes where it left off;
 *       output is byte-identical for any --jobs value. --quick runs
 *       every cell at a short fixed branch budget; --workloads (or
 *       its alias --suite) points every figure at other suites,
 *       workloads, or trace:<path> files; --max-cells bounds newly
 *       executed cells (the report renders once all grids are
 *       complete). --progress swaps per-cell lines for a throttled
 *       stderr heartbeat; --stats-out dumps the run-wide stats
 *       registry (JSON + .md); --trace-out writes a Perfetto-
 *       loadable span trace; --no-fork disables fork-based execution
 *       of shared-warmup cells (DESIGN.md §11); --batch multiplexes
 *       each (workload, mode) pair's cells through one lockstep pass
 *       over a shared committed stream (DESIGN.md §12). None of
 *       these changes any store or report byte.
 *
 *   pcbp_repro render [--figures LIST|all] [--out DIR] [--quick]
 *                     [--branches N] [--workloads LIST] [--suite LIST]
 *       Re-render the artifacts from DIR/store/ without simulating
 *       (fatal if a needed cell is missing — run first). Options
 *       must match the run that filled the stores.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/span_trace.hh"
#include "obs/stat_registry.hh"
#include "report/repro.hh"

using namespace pcbp;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " COMMAND [options]\n"
        << "  list\n"
        << "  run    [--figures LIST|all] [--out DIR] [--jobs N]"
           " [--quick]\n"
        << "         [--branches N] [--workloads LIST] [--suite LIST]\n"
        << "         [--max-cells N] [--quiet] [--progress]\n"
        << "         [--stats-out FILE] [--trace-out FILE]"
           " [--no-fork] [--batch]\n"
        << "  render [--figures LIST|all] [--out DIR] [--quick]"
           " [--branches N]\n"
        << "         [--workloads LIST] [--suite LIST]\n";
    std::exit(2);
}

struct Args
{
    ReproOptions opts;
    std::string statsOut;
    std::string traceOut;
    bool quiet = false;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    a.opts.outDir = "repro-out";
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        auto list = [&](std::vector<std::string> &into) {
            std::istringstream is(next());
            std::string item;
            while (std::getline(is, item, ','))
                if (!item.empty())
                    into.push_back(item);
        };
        if (arg == "--figures")
            list(a.opts.figures);
        else if (arg == "--workloads" || arg == "--suite")
            list(a.opts.figure.workloads);
        else if (arg == "--out")
            a.opts.outDir = next();
        else if (arg == "--branches")
            a.opts.figure.branches =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--jobs")
            a.opts.jobs =
                static_cast<unsigned>(std::atoi(next().c_str()));
        else if (arg == "--max-cells")
            a.opts.maxCells =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--quick")
            a.opts.quick = true;
        else if (arg == "--quiet")
            a.quiet = true;
        else if (arg == "--progress")
            a.opts.progress = true;
        else if (arg == "--no-fork")
            a.opts.fork = false;
        else if (arg == "--batch")
            a.opts.batch = true;
        else if (arg == "--stats-out")
            a.statsOut = next();
        else if (arg == "--trace-out")
            a.traceOut = next();
        else
            usage(argv[0]);
    }
    return a;
}

int
cmdList()
{
    FigureOptions fo;
    std::cout << "id         paper ref   cells  title\n";
    for (const auto &f : allFigures()) {
        std::size_t cells = 0;
        for (const auto &spec : f.sweeps(fo))
            cells += spec.cells().size();
        std::printf("%-10s %-11s %5zu  %s\n", f.id.c_str(),
                    f.paperRef.c_str(), cells, f.title.c_str());
    }
    return 0;
}

int
cmdRun(Args a)
{
    // The heartbeat replaces the per-cell log lines; --quiet mutes
    // both.
    if (a.quiet)
        a.opts.progress = false;
    if (!a.quiet && !a.opts.progress) {
        std::size_t done = 0;
        a.opts.log = [done](const std::string &line) mutable {
            std::cerr << "[" << ++done << "] " << line << "\n";
        };
    }
    StatRegistry reg;
    SpanTracer tracer;
    if (!a.statsOut.empty())
        a.opts.stats = &reg;
    if (!a.traceOut.empty())
        a.opts.tracer = &tracer;
    const ReproSummary s = runRepro(a.opts);
    if (a.opts.stats)
        reg.writeFiles(a.statsOut);
    if (a.opts.tracer)
        tracer.writeFile(a.traceOut);
    std::cout << "repro: " << s.totalCells << " cells, "
              << s.skippedCells << " already done, "
              << s.executedCells << " executed\n";
    if (!s.complete) {
        std::cout << s.totalCells - s.skippedCells - s.executedCells
                  << " cells remaining (re-run to continue; the "
                     "report renders when complete)\n";
        return 1;
    }
    std::cout << "report: " << s.reportPath << "\n";
    return 0;
}

int
cmdRender(Args a)
{
    a.opts.renderOnly = true;
    const ReproSummary s = runRepro(a.opts);
    if (!s.complete) {
        std::cerr << "render: stores under " << a.opts.outDir
                  << "/store hold " << s.skippedCells << " of "
                  << s.totalCells
                  << " cells for these options; use `run` first\n";
        return 1;
    }
    std::cout << "report: " << s.reportPath << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    const std::string cmd = argv[1];
    const Args a = parseArgs(argc, argv);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(a);
    if (cmd == "render")
        return cmdRender(a);
    usage(argv[0]);
}
