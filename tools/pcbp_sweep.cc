/**
 * @file
 * pcbp_sweep — the sweep orchestration CLI.
 *
 *   pcbp_sweep run --spec FILE --store FILE [--jobs N]
 *                  [--max-cells N] [--quiet]
 *       Execute the grid. Cells already in the store are skipped, so
 *       an interrupted run resumes where it left off. Output is
 *       bit-identical for any --jobs value. `mode = timing` grids
 *       run the cycle-level model (progress lines report uPC
 *       instead of misp/Kuops).
 *
 *   pcbp_sweep status --spec FILE --store FILE
 *       Completed / remaining cell counts for the grid.
 *
 *   pcbp_sweep cells --spec FILE
 *       List the grid's cells and content keys without running.
 *
 *   pcbp_sweep export --store FILE [--format csv|json] [--out FILE]
 *       Dump the store (file order) as CSV or a JSON array.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/stats.hh"
#include "sweep/runner.hh"

using namespace pcbp;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " COMMAND [options]\n"
        << "  run    --spec FILE --store FILE [--jobs N]"
           " [--max-cells N] [--quiet]\n"
        << "  status --spec FILE --store FILE\n"
        << "  cells  --spec FILE\n"
        << "  export --store FILE [--format csv|json] [--out FILE]\n";
    std::exit(2);
}

struct Args
{
    std::string spec;
    std::string store;
    std::string format = "csv";
    std::string out;
    unsigned jobs = 0;
    std::size_t maxCells = 0;
    bool quiet = false;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--spec")
            a.spec = next();
        else if (arg == "--store")
            a.store = next();
        else if (arg == "--format")
            a.format = next();
        else if (arg == "--out")
            a.out = next();
        else if (arg == "--jobs")
            a.jobs = static_cast<unsigned>(std::atoi(next().c_str()));
        else if (arg == "--max-cells")
            a.maxCells = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--quiet")
            a.quiet = true;
        else
            usage(argv[0]);
    }
    return a;
}

int
cmdRun(const Args &a, const char *argv0)
{
    if (a.spec.empty() || a.store.empty())
        usage(argv0);
    const SweepSpec spec = SweepSpec::parseFile(a.spec);
    ResultStore store(a.store);

    SweepRunOptions opt;
    opt.jobs = a.jobs;
    opt.maxCells = a.maxCells;
    std::size_t flushed = 0;
    if (!a.quiet) {
        opt.onCellDone = [&](const SweepCell &cell,
                             const CellResult &r) {
            std::cerr << "[" << ++flushed << "] " << cell.key();
            if (r.timing)
                std::cerr << " uPC=" << fmtDouble(r.upc(), 3);
            else
                std::cerr << " misp/Kuops="
                          << fmtDouble(
                                 r.toEngineStats().mispPerKuops(), 3);
            std::cerr << "\n";
        };
    }

    const SweepRunSummary s = runSweep(spec, store, opt);
    std::cout << "sweep '" << spec.name << "': " << s.totalCells
              << " cells, " << s.skippedCells << " already done, "
              << s.executedCells << " executed\n";
    const std::size_t remaining =
        s.totalCells - s.skippedCells - s.executedCells;
    if (remaining)
        std::cout << remaining
                  << " cells remaining (re-run to continue)\n";
    return 0;
}

int
cmdStatus(const Args &a, const char *argv0)
{
    if (a.spec.empty() || a.store.empty())
        usage(argv0);
    const SweepSpec spec = SweepSpec::parseFile(a.spec);
    const ResultStore store(a.store);

    std::size_t completed = 0;
    const auto cells = spec.cells();
    for (const auto &cell : cells)
        if (store.has(cell.key()))
            ++completed;

    TablePrinter t({"sweep", "cells", "completed", "remaining"});
    t.addRow({spec.name, std::to_string(cells.size()),
              std::to_string(completed),
              std::to_string(cells.size() - completed)});
    std::cout << t.str();
    return 0;
}

int
cmdCells(const Args &a, const char *argv0)
{
    if (a.spec.empty())
        usage(argv0);
    const SweepSpec spec = SweepSpec::parseFile(a.spec);
    for (const auto &cell : spec.cells())
        std::cout << cell.index << " " << cell.key() << "\n";
    return 0;
}

int
cmdExport(const Args &a, const char *argv0)
{
    if (a.store.empty())
        usage(argv0);
    if (!std::ifstream(a.store)) {
        std::cerr << "no such store: " << a.store << "\n";
        return 1;
    }
    const ResultStore store(a.store);

    std::string text;
    if (a.format == "csv")
        text = ResultStore::exportCsv(store.all());
    else if (a.format == "json")
        text = ResultStore::exportJson(store.all());
    else
        usage(argv0);

    if (a.out.empty()) {
        std::cout << text;
        return 0;
    }
    std::ofstream out(a.out);
    if (!out) {
        std::cerr << "cannot write " << a.out << "\n";
        return 1;
    }
    out << text;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    const std::string cmd = argv[1];
    const Args a = parseArgs(argc, argv);
    if (cmd == "run")
        return cmdRun(a, argv[0]);
    if (cmd == "status")
        return cmdStatus(a, argv[0]);
    if (cmd == "cells")
        return cmdCells(a, argv[0]);
    if (cmd == "export")
        return cmdExport(a, argv[0]);
    usage(argv[0]);
}
