/**
 * @file
 * pcbp_sweep — the sweep orchestration CLI.
 *
 *   pcbp_sweep run --spec FILE --store FILE [--jobs N]
 *                  [--max-cells N] [--quiet] [--progress]
 *                  [--stats-out FILE] [--trace-out FILE]
 *                  [--cell-stats] [--no-fork] [--batch]
 *       Execute the grid. Cells already in the store are skipped, so
 *       an interrupted run resumes where it left off. Output is
 *       bit-identical for any --jobs value. `mode = timing` grids
 *       run the cycle-level model (progress lines report uPC
 *       instead of misp/Kuops). --progress swaps per-cell lines for
 *       a throttled heartbeat; --stats-out dumps the run-wide stats
 *       registry (JSON + .md); --trace-out writes a Perfetto-
 *       loadable span trace; --cell-stats embeds each cell's sim
 *       counters in its stored result (off by default — stores stay
 *       byte-identical to earlier versions); --no-fork disables
 *       fork-based execution of shared-warmup cells (DESIGN.md §11
 *       — results are bit-identical either way, just slower);
 *       --batch multiplexes all cells of each (workload, mode) pair
 *       through one lockstep pass over a shared committed stream
 *       (DESIGN.md §12 — again bit-identical, the stream is
 *       produced once per workload instead of once per cell).
 *
 *   pcbp_sweep status --spec FILE --store FILE [--watch SEC]
 *       Completed / remaining cell counts for the grid. --watch
 *       re-reads the store every SEC seconds and emits a live
 *       progress line until the grid completes — store-derived, so
 *       it tracks a `run` executing in another process.
 *
 *   pcbp_sweep cells --spec FILE
 *       List the grid's cells and content keys without running.
 *
 *   pcbp_sweep export --store FILE [--format csv|json] [--out FILE]
 *       Dump the store (file order) as CSV or a JSON array.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/progress.hh"
#include "obs/span_trace.hh"
#include "obs/stat_registry.hh"
#include "sweep/runner.hh"

using namespace pcbp;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " COMMAND [options]\n"
        << "  run    --spec FILE --store FILE [--jobs N]"
           " [--max-cells N] [--quiet]\n"
        << "         [--progress] [--stats-out FILE]"
           " [--trace-out FILE] [--cell-stats] [--no-fork]"
           " [--batch]\n"
        << "  status --spec FILE --store FILE [--watch SEC]\n"
        << "  cells  --spec FILE\n"
        << "  export --store FILE [--format csv|json] [--out FILE]\n";
    std::exit(2);
}

struct Args
{
    std::string spec;
    std::string store;
    std::string format = "csv";
    std::string out;
    std::string statsOut;
    std::string traceOut;
    unsigned jobs = 0;
    std::size_t maxCells = 0;
    unsigned watchSec = 0;
    bool quiet = false;
    bool progress = false;
    bool cellStats = false;
    bool fork = true;
    bool batch = false;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--spec")
            a.spec = next();
        else if (arg == "--store")
            a.store = next();
        else if (arg == "--format")
            a.format = next();
        else if (arg == "--out")
            a.out = next();
        else if (arg == "--jobs")
            a.jobs = static_cast<unsigned>(std::atoi(next().c_str()));
        else if (arg == "--max-cells")
            a.maxCells = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--stats-out")
            a.statsOut = next();
        else if (arg == "--trace-out")
            a.traceOut = next();
        else if (arg == "--watch")
            a.watchSec =
                static_cast<unsigned>(std::atoi(next().c_str()));
        else if (arg == "--quiet")
            a.quiet = true;
        else if (arg == "--progress")
            a.progress = true;
        else if (arg == "--cell-stats")
            a.cellStats = true;
        else if (arg == "--no-fork")
            a.fork = false;
        else if (arg == "--batch")
            a.batch = true;
        else
            usage(argv[0]);
    }
    return a;
}

int
cmdRun(const Args &a, const char *argv0)
{
    if (a.spec.empty() || a.store.empty())
        usage(argv0);
    const SweepSpec spec = SweepSpec::parseFile(a.spec);
    ResultStore store(a.store);

    StatRegistry reg;
    SpanTracer tracer;
    SweepRunOptions opt;
    opt.jobs = a.jobs;
    opt.maxCells = a.maxCells;
    opt.cellStats = a.cellStats;
    opt.fork = a.fork;
    opt.batch = a.batch;
    if (!a.statsOut.empty())
        opt.stats = &reg;
    if (!a.traceOut.empty())
        opt.tracer = &tracer;

    std::unique_ptr<ProgressMeter> meter;
    if (a.progress && !a.quiet) {
        const auto cells = spec.cells();
        meter = std::make_unique<ProgressMeter>(cells.size(),
                                                "cells");
        std::uint64_t resumed = 0;
        for (const auto &cell : cells)
            resumed += store.has(cell.key()) ? 1 : 0;
        meter->setResumed(resumed);
    }

    std::size_t flushed = 0;
    opt.onCellDone = [&](const SweepCell &cell,
                         const CellResult &r) {
        // The heartbeat replaces the per-cell lines; --quiet mutes
        // both.
        if (!a.quiet && !meter) {
            std::cerr << "[" << ++flushed << "] " << cell.key();
            if (r.timing)
                std::cerr << " uPC=" << fmtDouble(r.upc(), 3);
            else
                std::cerr << " misp/Kuops="
                          << fmtDouble(
                                 r.toEngineStats().mispPerKuops(), 3);
            std::cerr << "\n";
        }
        if (meter)
            meter->tick(r.committedBranches);
    };

    const std::uint64_t sweepStart = tracer.now();
    const SweepRunSummary s = runSweep(spec, store, opt);
    if (meter)
        meter->finish();
    if (opt.stats) {
        store.exportStats(reg);
        reg.writeFiles(a.statsOut);
    }
    if (opt.tracer) {
        tracer.record(spec.name, "sweep", 0, sweepStart,
                      tracer.now());
        tracer.writeFile(a.traceOut);
    }
    std::cout << "sweep '" << spec.name << "': " << s.totalCells
              << " cells, " << s.skippedCells << " already done, "
              << s.executedCells << " executed\n";
    const std::size_t remaining =
        s.totalCells - s.skippedCells - s.executedCells;
    if (remaining)
        std::cout << remaining
                  << " cells remaining (re-run to continue)\n";
    return 0;
}

int
cmdStatus(const Args &a, const char *argv0)
{
    if (a.spec.empty() || a.store.empty())
        usage(argv0);
    const SweepSpec spec = SweepSpec::parseFile(a.spec);
    const auto cells = spec.cells();

    // Re-reading the store each round makes this a live view of a
    // `run` writing the same JSONL from another process.
    const auto countCompleted = [&]() {
        const ResultStore store(a.store);
        std::size_t completed = 0;
        for (const auto &cell : cells)
            if (store.has(cell.key()))
                ++completed;
        return completed;
    };

    std::size_t completed = countCompleted();
    while (a.watchSec && completed < cells.size()) {
        logRawLine("progress: " + std::to_string(completed) + "/" +
                   std::to_string(cells.size()) + " cells (" +
                   std::to_string(cells.empty()
                                      ? 100
                                      : 100 * completed /
                                            cells.size()) +
                   "%)");
        std::this_thread::sleep_for(
            std::chrono::seconds(a.watchSec));
        completed = countCompleted();
    }

    TablePrinter t({"sweep", "cells", "completed", "remaining"});
    t.addRow({spec.name, std::to_string(cells.size()),
              std::to_string(completed),
              std::to_string(cells.size() - completed)});
    std::cout << t.str();
    return 0;
}

int
cmdCells(const Args &a, const char *argv0)
{
    if (a.spec.empty())
        usage(argv0);
    const SweepSpec spec = SweepSpec::parseFile(a.spec);
    for (const auto &cell : spec.cells())
        std::cout << cell.index << " " << cell.key() << "\n";
    return 0;
}

int
cmdExport(const Args &a, const char *argv0)
{
    if (a.store.empty())
        usage(argv0);
    if (!std::ifstream(a.store)) {
        std::cerr << "no such store: " << a.store << "\n";
        return 1;
    }
    const ResultStore store(a.store);

    std::string text;
    if (a.format == "csv")
        text = ResultStore::exportCsv(store.all());
    else if (a.format == "json")
        text = ResultStore::exportJson(store.all());
    else
        usage(argv0);

    if (a.out.empty()) {
        std::cout << text;
        return 0;
    }
    std::ofstream out(a.out);
    if (!out) {
        std::cerr << "cannot write " << a.out << "\n";
        return 1;
    }
    out << text;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    const std::string cmd = argv[1];
    const Args a = parseArgs(argc, argv);
    if (cmd == "run")
        return cmdRun(a, argv[0]);
    if (cmd == "status")
        return cmdStatus(a, argv[0]);
    if (cmd == "cells")
        return cmdCells(a, argv[0]);
    if (cmd == "export")
        return cmdExport(a, argv[0]);
    usage(argv[0]);
}
