/**
 * @file
 * pcbp_trace — committed-branch trace tooling (PCBPTRC1 format).
 *
 *   pcbp_trace record --workload NAME --out FILE [--branches N]
 *       Walk a registered workload's CFG architecturally and stream
 *       the committed branches to FILE (constant memory; N defaults
 *       to the workload's warmup + measure budget).
 *
 *   pcbp_trace summarize FILE
 *       One chunked pass over FILE: branches, uops, taken rate,
 *       static branch count.
 *
 *   pcbp_trace replay FILE [--prophet K] [--prophet-budget B]
 *                          [--critic K|none] [--critic-budget B]
 *                          [--future-bits N] [--warmup N]
 *                          [--measure N] [--timing]
 *       Reconstruct the CFG from FILE and drive the accuracy engine
 *       (or, with --timing, the cycle-level model) with the file as
 *       the committed stream — resident memory stays O(pipeline)
 *       however long the trace is. Equivalent workload name for the
 *       driver/sweep layers: trace:FILE.
 *
 *   pcbp_trace h2p FILE [replay options] [--top N]
 *                       [--stats-out FILE]
 *       Replay FILE with the commit-path H2P profiler attached and
 *       print the hard-to-predict branch report: per-branch
 *       accuracy/entropy, the top-miss ranking, and how concentrated
 *       the misses are (Lin & Tarsa / Bullseye-style targeting view).
 *       --stats-out dumps the engine's stats registry with the
 *       profiler's per-PC `h2p.*` section on top (pcbp-stats-1).
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "obs/stat_registry.hh"
#include "sim/driver.hh"
#include "workload/trace.hh"

using namespace pcbp;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s COMMAND [options]\n"
        "  record    --workload NAME --out FILE [--branches N]\n"
        "  summarize FILE\n"
        "  replay    FILE [--prophet K] [--prophet-budget B]\n"
        "                 [--critic K|none] [--critic-budget B]\n"
        "                 [--future-bits N] [--warmup N] [--measure N]\n"
        "                 [--timing]\n"
        "  h2p       FILE [replay options] [--top N]"
        " [--stats-out FILE]\n",
        argv0);
    std::exit(2);
}

std::uint64_t
parseCount(const char *s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0')
        pcbp_fatal("bad count '", s, "'");
    return v;
}

int
cmdRecord(int argc, char **argv)
{
    std::string workload, out;
    std::optional<std::uint64_t> branchesOpt;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workload" && i + 1 < argc)
            workload = argv[++i];
        else if (a == "--out" && i + 1 < argc)
            out = argv[++i];
        else if (a == "--branches" && i + 1 < argc)
            branchesOpt = parseCount(argv[++i]);
        else
            usage("pcbp_trace");
    }
    if (workload.empty() || out.empty())
        usage("pcbp_trace");

    const Workload &w = workloadByName(workload);
    const std::uint64_t branches =
        branchesOpt.value_or(w.warmupBranches + w.simBranches);

    Program program = buildProgram(w);
    ProgramWalkStream stream(program, branches);
    TraceWriter writer(out);
    for (std::uint64_t i = 0; i < branches; ++i) {
        const CommittedBranch *cb = stream.at(i);
        pcbp_assert(cb != nullptr);
        writer.append(*cb);
        stream.release(i + 1);
    }
    writer.finish();
    std::printf("recorded %" PRIu64 " branches of '%s' to %s "
                "(window peak %zu records)\n",
                writer.written(), w.name.c_str(), out.c_str(),
                stream.windowPeak());
    return 0;
}

int
cmdSummarize(const std::string &path)
{
    const TraceSummary s = summarizeTraceFile(path);
    std::printf("%s\n", path.c_str());
    std::printf("  branches         %" PRIu64 "\n", s.branches);
    std::printf("  uops             %" PRIu64 "\n", s.uops);
    std::printf("  taken rate       %.4f\n", s.takenRate());
    std::printf("  uops per branch  %.2f\n", s.uopsPerBranch());
    std::printf("  static branches  %" PRIu64 "\n", s.staticBranches);
    return 0;
}

/** Options shared by the replay and h2p commands. */
struct ReplayOptions
{
    HybridSpec spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    std::optional<std::uint64_t> warmupOpt, measureOpt;
    std::string statsOut;
    bool timing = false;
    bool sawTop = false;
    std::size_t top = 10;
};

ReplayOptions
parseReplayOptions(int argc, char **argv)
{
    ReplayOptions o;
    bool haveCritic = true;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--prophet" && i + 1 < argc)
            o.spec.prophet = parseProphetKind(argv[++i]);
        else if (a == "--prophet-budget" && i + 1 < argc)
            o.spec.prophetBudget = parseBudget(argv[++i]);
        else if (a == "--critic" && i + 1 < argc) {
            const std::string k = argv[++i];
            haveCritic = k != "none";
            if (haveCritic)
                o.spec.critic = parseCriticKind(k);
        } else if (a == "--critic-budget" && i + 1 < argc)
            o.spec.criticBudget = parseBudget(argv[++i]);
        else if (a == "--future-bits" && i + 1 < argc)
            o.spec.futureBits = unsigned(parseCount(argv[++i]));
        else if (a == "--warmup" && i + 1 < argc)
            o.warmupOpt = parseCount(argv[++i]);
        else if (a == "--measure" && i + 1 < argc)
            o.measureOpt = parseCount(argv[++i]);
        else if (a == "--timing")
            o.timing = true;
        else if (a == "--top" && i + 1 < argc) {
            o.sawTop = true;
            o.top = parseCount(argv[++i]);
        } else if (a == "--stats-out" && i + 1 < argc)
            o.statsOut = argv[++i];
        else
            usage("pcbp_trace");
    }
    if (!haveCritic) {
        o.spec.critic.reset();
        o.spec.futureBits = 0;
    }
    return o;
}

int
cmdReplay(const std::string &path, int argc, char **argv)
{
    const ReplayOptions o = parseReplayOptions(argc, argv);
    if (o.sawTop)
        pcbp_fatal("--top belongs to the h2p command");
    if (!o.statsOut.empty())
        pcbp_fatal("--stats-out belongs to the h2p command");
    const HybridSpec &spec = o.spec;
    const bool timing = o.timing;

    const Workload &w = workloadByName("trace:" + path);
    const std::uint64_t warmup = o.warmupOpt.value_or(w.warmupBranches);
    const std::uint64_t measure = o.measureOpt.value_or(w.simBranches);

    Program program = buildProgram(w);
    auto hybrid = spec.build();
    std::printf("replaying %s (%" PRIu64 " branches) under %s\n",
                path.c_str(), traceFileCount(path),
                spec.label().c_str());

    if (timing) {
        TimingConfig cfg;
        cfg.warmupBranches = warmup;
        cfg.measureBranches = measure;
        TimingSim sim(program, *hybrid, cfg);
        TraceFileStream stream(path);
        const TimingStats st = sim.run(stream);
        std::printf("  committed        %" PRIu64 " branches / "
                    "%" PRIu64 " uops\n",
                    st.committedBranches, st.committedUops);
        std::printf("  cycles           %" PRIu64 "\n", st.cycles);
        std::printf("  uPC              %.3f\n", st.upc());
        std::printf("  mispredicts      %" PRIu64 "\n",
                    st.finalMispredicts);
        std::printf("  stream window    %zu records peak\n",
                    stream.windowPeak());
    } else {
        EngineConfig cfg;
        cfg.warmupBranches = warmup;
        cfg.measureBranches = measure;
        Engine engine(program, *hybrid, cfg);
        TraceFileStream stream(path);
        const EngineStats st = engine.run(stream);
        std::printf("  committed        %" PRIu64 " branches / "
                    "%" PRIu64 " uops\n",
                    st.committedBranches, st.committedUops);
        std::printf("  misp rate        %.4f (%" PRIu64
                    " mispredicts)\n",
                    st.mispRate(), st.finalMispredicts);
        std::printf("  misp/kuop        %.3f\n", st.mispPerKuops());
        std::printf("  critic overrides %" PRIu64 "\n",
                    st.criticOverrides);
        std::printf("  stream window    %zu records peak\n",
                    stream.windowPeak());
    }
    return 0;
}

int
cmdH2p(const std::string &path, int argc, char **argv)
{
    const ReplayOptions o = parseReplayOptions(argc, argv);
    if (o.timing)
        pcbp_fatal("h2p profiles the accuracy engine; drop --timing");

    const Workload &w = workloadByName("trace:" + path);
    EngineConfig cfg;
    cfg.warmupBranches = o.warmupOpt.value_or(w.warmupBranches);
    cfg.measureBranches = o.measureOpt.value_or(w.simBranches);

    H2PConfig hcfg;
    hcfg.topN = o.top;
    if (o.statsOut.empty()) {
        const H2PReport report = runH2P(w, o.spec, cfg, hcfg);
        std::fputs(report.render().c_str(), stdout);
        return 0;
    }

    // Own the commit tap (what runH2P does internally) so the
    // engine's counters and the profiler's per-PC section land in
    // one registry dump.
    H2PProfiler profiler(cfg.warmupBranches);
    cfg.commitSink = &profiler;
    StatRegistry reg;
    cfg.statsOut = &reg;
    runAccuracy(w, o.spec, cfg);

    H2PReport report = profiler.report(hcfg);
    report.workload = w.name;
    report.config = o.spec.label();
    std::fputs(report.render().c_str(), stdout);

    profiler.exportStats(reg);
    reg.writeFiles(o.statsOut);
    std::printf("stats: %s\n", o.statsOut.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    const std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(argc - 2, argv + 2);
    if (cmd == "summarize" && argc == 3)
        return cmdSummarize(argv[2]);
    if (cmd == "replay" && argc >= 3)
        return cmdReplay(argv[2], argc - 3, argv + 3);
    if (cmd == "h2p" && argc >= 3)
        return cmdH2p(argv[2], argc - 3, argv + 3);
    usage(argv[0]);
}
