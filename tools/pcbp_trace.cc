/**
 * @file
 * pcbp_trace — committed-branch trace tooling (PCBPTRC1 interchange
 * and PCBPTRC2 compressed-indexed formats; every FILE argument is
 * magic-sniffed, so either format works everywhere).
 *
 *   pcbp_trace record --workload NAME --out FILE [--branches N]
 *                     [--format v1|v2] [--block-records N]
 *       Walk a registered workload's CFG architecturally and stream
 *       the committed branches to FILE (constant memory; N defaults
 *       to the workload's warmup + measure budget).
 *
 *   pcbp_trace summarize FILE
 *       One chunked pass over FILE: branches, uops, taken rate,
 *       static branch count.
 *
 *   pcbp_trace convert IN OUT [--to v1|v2] [--block-records N]
 *       Lossless conversion between the formats (default: to
 *       PCBPTRC2). Prints the record count and the size ratio.
 *
 *   pcbp_trace info FILE
 *       Deterministic `key value` identity of a trace file of either
 *       format: record/block/static-branch counts, bytes per record,
 *       compression ratio vs PCBPTRC1 (schema pinned in CI).
 *
 *   pcbp_trace import-ascii IN OUT [--format v1|v2]
 *                                  [--block-records N]
 *       Import a CBP-style ASCII branch trace: one branch per line,
 *       `PC OUTCOME [UOPS]` — PC in hex (0x...) or decimal, OUTCOME
 *       one of 1/0/T/N, optional per-branch uop count (default 1).
 *       Lines starting with '#' and blank lines are skipped. Block
 *       ids are assigned per distinct PC in first-seen order.
 *
 *   pcbp_trace replay FILE [--prophet K] [--prophet-budget B]
 *                          [--critic K|none] [--critic-budget B]
 *                          [--future-bits N] [--warmup N]
 *                          [--measure N] [--timing]
 *       Reconstruct the CFG from FILE and drive the accuracy engine
 *       (or, with --timing, the cycle-level model) with the file as
 *       the committed stream — resident memory stays O(pipeline)
 *       however long the trace is. Equivalent workload name for the
 *       driver/sweep layers: trace:FILE.
 *
 *   pcbp_trace h2p FILE [replay options] [--top N]
 *                       [--stats-out FILE]
 *       Replay FILE with the commit-path H2P profiler attached and
 *       print the hard-to-predict branch report: per-branch
 *       accuracy/entropy, the top-miss ranking, and how concentrated
 *       the misses are (Lin & Tarsa / Bullseye-style targeting view).
 *       --stats-out dumps the engine's stats registry with the
 *       profiler's per-PC `h2p.*` section on top (pcbp-stats-1).
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/stat_registry.hh"
#include "sim/driver.hh"
#include "workload/trace.hh"
#include "workload/trace2.hh"

using namespace pcbp;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s COMMAND [options]\n"
        "  record    --workload NAME --out FILE [--branches N]\n"
        "            [--format v1|v2] [--block-records N]\n"
        "  summarize FILE\n"
        "  convert   IN OUT [--to v1|v2] [--block-records N]\n"
        "  info      FILE\n"
        "  import-ascii IN OUT [--format v1|v2] [--block-records N]\n"
        "  replay    FILE [--prophet K] [--prophet-budget B]\n"
        "                 [--critic K|none] [--critic-budget B]\n"
        "                 [--future-bits N] [--warmup N] [--measure N]\n"
        "                 [--timing]\n"
        "  h2p       FILE [replay options] [--top N]"
        " [--stats-out FILE]\n",
        argv0);
    std::exit(2);
}

std::uint64_t
parseCount(const char *s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0')
        pcbp_fatal("bad count '", s, "'");
    return v;
}

/** "v1" -> false, "v2" -> true; anything else is a usage error. */
bool
parseFormatV2(const char *s)
{
    const std::string f = s;
    if (f == "v1")
        return false;
    if (f == "v2")
        return true;
    usage("pcbp_trace");
}

int
cmdRecord(int argc, char **argv)
{
    std::string workload, out;
    std::optional<std::uint64_t> branchesOpt;
    bool toV2 = false;
    std::uint32_t blockRecords = trace2fmt::defaultBlockRecords;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workload" && i + 1 < argc)
            workload = argv[++i];
        else if (a == "--out" && i + 1 < argc)
            out = argv[++i];
        else if (a == "--branches" && i + 1 < argc)
            branchesOpt = parseCount(argv[++i]);
        else if (a == "--format" && i + 1 < argc)
            toV2 = parseFormatV2(argv[++i]);
        else if (a == "--block-records" && i + 1 < argc)
            blockRecords = std::uint32_t(parseCount(argv[++i]));
        else
            usage("pcbp_trace");
    }
    if (workload.empty() || out.empty())
        usage("pcbp_trace");

    const Workload &w = workloadByName(workload);
    const std::uint64_t branches =
        branchesOpt.value_or(w.warmupBranches + w.simBranches);

    Program program = buildProgram(w);
    ProgramWalkStream stream(program, branches);
    const auto recordTo = [&](auto &writer) {
        for (std::uint64_t i = 0; i < branches; ++i) {
            const CommittedBranch *cb = stream.at(i);
            pcbp_assert(cb != nullptr);
            writer.append(*cb);
            stream.release(i + 1);
        }
        writer.finish();
        return writer.written();
    };
    std::uint64_t written = 0;
    if (toV2) {
        Trace2Writer writer(out, blockRecords);
        written = recordTo(writer);
    } else {
        TraceWriter writer(out);
        written = recordTo(writer);
    }
    std::printf("recorded %" PRIu64 " branches of '%s' to %s "
                "(%s, window peak %zu records)\n",
                written, w.name.c_str(), out.c_str(),
                toV2 ? "pcbptrc2" : "pcbptrc1", stream.windowPeak());
    return 0;
}

int
cmdConvert(const std::string &in, const std::string &out, int argc,
           char **argv)
{
    bool toV2 = true;
    std::uint32_t blockRecords = trace2fmt::defaultBlockRecords;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--to" && i + 1 < argc)
            toV2 = parseFormatV2(argv[++i]);
        else if (a == "--block-records" && i + 1 < argc)
            blockRecords = std::uint32_t(parseCount(argv[++i]));
        else
            usage("pcbp_trace");
    }
    const std::uint64_t n = convertTraceFile(in, out, toV2, blockRecords);
    const std::uint64_t v1Bytes =
        tracefmt::headerBytes + n * tracefmt::recordBytes;
    const std::uint64_t outBytes =
        toV2 ? Trace2Reader::open(out)->mappedBytes() : v1Bytes;
    std::printf("converted %" PRIu64 " records: %s -> %s (%s, "
                "%" PRIu64 " bytes, %.2fx vs pcbptrc1)\n",
                n, in.c_str(), out.c_str(),
                toV2 ? "pcbptrc2" : "pcbptrc1", outBytes,
                outBytes ? double(v1Bytes) / double(outBytes) : 0.0);
    return 0;
}

int
cmdInfo(const std::string &path)
{
    std::fputs(renderTraceInfo(path).c_str(), stdout);
    return 0;
}

int
cmdImportAscii(const std::string &in, const std::string &out, int argc,
               char **argv)
{
    bool toV2 = true;
    std::uint32_t blockRecords = trace2fmt::defaultBlockRecords;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--format" && i + 1 < argc)
            toV2 = parseFormatV2(argv[++i]);
        else if (a == "--block-records" && i + 1 < argc)
            blockRecords = std::uint32_t(parseCount(argv[++i]));
        else
            usage("pcbp_trace");
    }

    std::FILE *f = std::fopen(in.c_str(), "rb");
    if (!f)
        pcbp_fatal("cannot open '", in, "' for reading");

    // Block ids by distinct PC, first-seen order, so the importer's
    // output replays through reconstructProgramFromTrace like any
    // recorded trace.
    std::unordered_map<Addr, BlockId> blockOf;
    const auto importTo = [&](auto &writer) {
        char line[256];
        std::uint64_t lineNo = 0;
        while (std::fgets(line, sizeof(line), f)) {
            ++lineNo;
            char *p = line;
            while (*p == ' ' || *p == '\t')
                ++p;
            if (*p == '\0' || *p == '\n' || *p == '#')
                continue;
            char *end = nullptr;
            const Addr pc = std::strtoull(p, &end, 0);
            if (end == p)
                pcbp_fatal("'", in, "' line ", lineNo, ": bad PC");
            p = end;
            while (*p == ' ' || *p == '\t')
                ++p;
            bool taken = false;
            if (*p == '1' || *p == 'T' || *p == 't')
                taken = true;
            else if (*p == '0' || *p == 'N' || *p == 'n')
                taken = false;
            else
                pcbp_fatal("'", in, "' line ", lineNo,
                           ": bad outcome (want 1/0/T/N)");
            ++p;
            std::uint32_t uops = 1;
            while (*p == ' ' || *p == '\t')
                ++p;
            if (*p != '\0' && *p != '\n' && *p != '\r' && *p != '#') {
                const std::uint64_t u = std::strtoull(p, &end, 10);
                if (end == p || u < 1 || u > 0xffffffffull)
                    pcbp_fatal("'", in, "' line ", lineNo,
                               ": bad uop count");
                uops = std::uint32_t(u);
            }
            const auto fit =
                blockOf.emplace(pc, BlockId(blockOf.size()));
            writer.append({fit.first->second, pc, taken, uops});
        }
        writer.finish();
        return writer.written();
    };
    std::uint64_t written = 0;
    if (toV2) {
        Trace2Writer writer(out, blockRecords);
        written = importTo(writer);
    } else {
        TraceWriter writer(out);
        written = importTo(writer);
    }
    std::fclose(f);
    std::printf("imported %" PRIu64 " branches (%zu static) from %s "
                "to %s (%s)\n",
                written, blockOf.size(), in.c_str(), out.c_str(),
                toV2 ? "pcbptrc2" : "pcbptrc1");
    return 0;
}

int
cmdSummarize(const std::string &path)
{
    const TraceSummary s = summarizeTraceFile(path);
    std::printf("%s\n", path.c_str());
    std::printf("  branches         %" PRIu64 "\n", s.branches);
    std::printf("  uops             %" PRIu64 "\n", s.uops);
    std::printf("  taken rate       %.4f\n", s.takenRate());
    std::printf("  uops per branch  %.2f\n", s.uopsPerBranch());
    std::printf("  static branches  %" PRIu64 "\n", s.staticBranches);
    return 0;
}

/** Options shared by the replay and h2p commands. */
struct ReplayOptions
{
    HybridSpec spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    std::optional<std::uint64_t> warmupOpt, measureOpt;
    std::string statsOut;
    bool timing = false;
    bool sawTop = false;
    std::size_t top = 10;
};

ReplayOptions
parseReplayOptions(int argc, char **argv)
{
    ReplayOptions o;
    bool haveCritic = true;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--prophet" && i + 1 < argc)
            o.spec.prophet = parseProphetKind(argv[++i]);
        else if (a == "--prophet-budget" && i + 1 < argc)
            o.spec.prophetBudget = parseBudget(argv[++i]);
        else if (a == "--critic" && i + 1 < argc) {
            const std::string k = argv[++i];
            haveCritic = k != "none";
            if (haveCritic)
                o.spec.critic = parseCriticKind(k);
        } else if (a == "--critic-budget" && i + 1 < argc)
            o.spec.criticBudget = parseBudget(argv[++i]);
        else if (a == "--future-bits" && i + 1 < argc)
            o.spec.futureBits = unsigned(parseCount(argv[++i]));
        else if (a == "--warmup" && i + 1 < argc)
            o.warmupOpt = parseCount(argv[++i]);
        else if (a == "--measure" && i + 1 < argc)
            o.measureOpt = parseCount(argv[++i]);
        else if (a == "--timing")
            o.timing = true;
        else if (a == "--top" && i + 1 < argc) {
            o.sawTop = true;
            o.top = parseCount(argv[++i]);
        } else if (a == "--stats-out" && i + 1 < argc)
            o.statsOut = argv[++i];
        else
            usage("pcbp_trace");
    }
    if (!haveCritic) {
        o.spec.critic.reset();
        o.spec.futureBits = 0;
    }
    return o;
}

int
cmdReplay(const std::string &path, int argc, char **argv)
{
    const ReplayOptions o = parseReplayOptions(argc, argv);
    if (o.sawTop)
        pcbp_fatal("--top belongs to the h2p command");
    if (!o.statsOut.empty())
        pcbp_fatal("--stats-out belongs to the h2p command");
    const HybridSpec &spec = o.spec;
    const bool timing = o.timing;

    const Workload &w = workloadByName("trace:" + path);
    const std::uint64_t warmup = o.warmupOpt.value_or(w.warmupBranches);
    const std::uint64_t measure = o.measureOpt.value_or(w.simBranches);

    Program program = buildProgram(w);
    auto hybrid = spec.build();
    std::printf("replaying %s (%" PRIu64 " branches) under %s\n",
                path.c_str(), traceFileCount(path),
                spec.label().c_str());

    if (timing) {
        TimingConfig cfg;
        cfg.warmupBranches = warmup;
        cfg.measureBranches = measure;
        TimingSim sim(program, *hybrid, cfg);
        auto streamPtr = openTraceStream(path);
        TraceStream &stream = *streamPtr;
        const TimingStats st = sim.run(stream);
        std::printf("  committed        %" PRIu64 " branches / "
                    "%" PRIu64 " uops\n",
                    st.committedBranches, st.committedUops);
        std::printf("  cycles           %" PRIu64 "\n", st.cycles);
        std::printf("  uPC              %.3f\n", st.upc());
        std::printf("  mispredicts      %" PRIu64 "\n",
                    st.finalMispredicts);
        std::printf("  stream window    %zu records peak\n",
                    stream.windowPeak());
    } else {
        EngineConfig cfg;
        cfg.warmupBranches = warmup;
        cfg.measureBranches = measure;
        Engine engine(program, *hybrid, cfg);
        auto streamPtr = openTraceStream(path);
        TraceStream &stream = *streamPtr;
        const EngineStats st = engine.run(stream);
        std::printf("  committed        %" PRIu64 " branches / "
                    "%" PRIu64 " uops\n",
                    st.committedBranches, st.committedUops);
        std::printf("  misp rate        %.4f (%" PRIu64
                    " mispredicts)\n",
                    st.mispRate(), st.finalMispredicts);
        std::printf("  misp/kuop        %.3f\n", st.mispPerKuops());
        std::printf("  critic overrides %" PRIu64 "\n",
                    st.criticOverrides);
        std::printf("  stream window    %zu records peak\n",
                    stream.windowPeak());
    }
    return 0;
}

int
cmdH2p(const std::string &path, int argc, char **argv)
{
    const ReplayOptions o = parseReplayOptions(argc, argv);
    if (o.timing)
        pcbp_fatal("h2p profiles the accuracy engine; drop --timing");

    const Workload &w = workloadByName("trace:" + path);
    EngineConfig cfg;
    cfg.warmupBranches = o.warmupOpt.value_or(w.warmupBranches);
    cfg.measureBranches = o.measureOpt.value_or(w.simBranches);

    H2PConfig hcfg;
    hcfg.topN = o.top;
    if (o.statsOut.empty()) {
        const H2PReport report = runH2P(w, o.spec, cfg, hcfg);
        std::fputs(report.render().c_str(), stdout);
        return 0;
    }

    // Own the commit tap (what runH2P does internally) so the
    // engine's counters and the profiler's per-PC section land in
    // one registry dump.
    H2PProfiler profiler(cfg.warmupBranches);
    cfg.commitSink = &profiler;
    StatRegistry reg;
    cfg.statsOut = &reg;
    runAccuracy(w, o.spec, cfg);

    H2PReport report = profiler.report(hcfg);
    report.workload = w.name;
    report.config = o.spec.label();
    std::fputs(report.render().c_str(), stdout);

    profiler.exportStats(reg);
    reg.writeFiles(o.statsOut);
    std::printf("stats: %s\n", o.statsOut.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    const std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(argc - 2, argv + 2);
    if (cmd == "summarize" && argc == 3)
        return cmdSummarize(argv[2]);
    if (cmd == "convert" && argc >= 4)
        return cmdConvert(argv[2], argv[3], argc - 4, argv + 4);
    if (cmd == "info" && argc == 3)
        return cmdInfo(argv[2]);
    if (cmd == "import-ascii" && argc >= 4)
        return cmdImportAscii(argv[2], argv[3], argc - 4, argv + 4);
    if (cmd == "replay" && argc >= 3)
        return cmdReplay(argv[2], argc - 3, argv + 3);
    if (cmd == "h2p" && argc >= 3)
        return cmdH2p(argv[2], argc - 3, argv + 3);
    usage(argv[0]);
}
